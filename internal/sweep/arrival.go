package sweep

import (
	"fmt"

	"noctg/internal/stochastic"
)

// Arrival process names.
const (
	// ProcessMMPP is the Markov-modulated (on/off bursty) process.
	ProcessMMPP = "mmpp"
	// ProcessSelfSimilar is the superposed Pareto on/off process.
	ProcessSelfSimilar = "selfsim"
)

// Dwell distribution names for ProcessMMPP.
const (
	DwellExp = "exp"
	DwellDet = "det"
)

// Arrival selects a bursty or self-similar arrival process for a
// stochastic workload, replacing the memoryless dist/mean_gap axis (the
// offered load lives in the process parameters instead).
type Arrival struct {
	// Process is ProcessMMPP or ProcessSelfSimilar.
	Process string `json:"process"`

	// Gaps and Dwells describe the MMPP state chain: per-state mean
	// injection gap (0 = silent state) and per-state mean dwell, both in
	// cycles. DwellDist selects "exp" (default) or "det" dwell times.
	Gaps      []float64 `json:"gaps,omitempty"`
	Dwells    []float64 `json:"dwells,omitempty"`
	DwellDist string    `json:"dwell_dist,omitempty"`

	// Sources, Hurst, OnMean, OffMean and PeakGap describe the
	// self-similar superposition (see stochastic.SelfSimilar).
	Sources int     `json:"sources,omitempty"`
	Hurst   float64 `json:"hurst,omitempty"`
	OnMean  float64 `json:"on_mean,omitempty"`
	OffMean float64 `json:"off_mean,omitempty"`
	PeakGap float64 `json:"peak_gap,omitempty"`
}

// mmpp compiles the MMPP view of the axis.
func (a *Arrival) mmpp() (*stochastic.MMPP, error) {
	if a.Sources != 0 || a.Hurst != 0 || a.OnMean != 0 || a.OffMean != 0 || a.PeakGap != 0 {
		return nil, fmt.Errorf("sweep: arrival %q does not take self-similar fields", a.Process)
	}
	m := &stochastic.MMPP{StateGaps: a.Gaps, StateDwells: a.Dwells}
	switch a.DwellDist {
	case "", DwellExp:
	case DwellDet:
		m.Deterministic = true
	default:
		return nil, fmt.Errorf("sweep: unknown dwell_dist %q (want %q or %q)",
			a.DwellDist, DwellExp, DwellDet)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// selfSimilar compiles the self-similar view of the axis.
func (a *Arrival) selfSimilar() (*stochastic.SelfSimilar, error) {
	if len(a.Gaps) != 0 || len(a.Dwells) != 0 || a.DwellDist != "" {
		return nil, fmt.Errorf("sweep: arrival %q does not take MMPP fields", a.Process)
	}
	s := &stochastic.SelfSimilar{
		Sources: a.Sources,
		Hurst:   a.Hurst,
		OnMean:  a.OnMean,
		OffMean: a.OffMean,
		PeakGap: a.PeakGap,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate checks the axis without instantiating a generator.
func (a *Arrival) validate() error {
	switch a.Process {
	case ProcessMMPP:
		_, err := a.mmpp()
		return err
	case ProcessSelfSimilar:
		_, err := a.selfSimilar()
		return err
	}
	return fmt.Errorf("sweep: unknown arrival process %q (want %q or %q)",
		a.Process, ProcessMMPP, ProcessSelfSimilar)
}

// label is the workload-label fragment of the axis, stable across runs.
func (a *Arrival) label() string {
	switch a.Process {
	case ProcessMMPP:
		s := fmt.Sprintf("mmpp%d", len(a.Gaps))
		if a.DwellDist == DwellDet {
			s += "det"
		}
		return s
	case ProcessSelfSimilar:
		return fmt.Sprintf("selfsimH%gx%d", a.Hurst, a.Sources)
	}
	return a.Process
}

// StochasticConfig compiles the workload into a generator configuration
// with the given seed. Target ranges (or the spatial pattern's destination
// table) are the runner's concern and stay unset here.
func (w Workload) StochasticConfig(seed int64) (stochastic.Config, error) {
	cfg := stochastic.Config{
		MeanGap: w.MeanGap,
		Count:   w.Count,
		Seed:    seed,
		Classes: w.Classes,
	}
	if w.Arrival != nil {
		switch w.Arrival.Process {
		case ProcessMMPP:
			m, err := w.Arrival.mmpp()
			if err != nil {
				return stochastic.Config{}, err
			}
			cfg.MMPP = m
		case ProcessSelfSimilar:
			s, err := w.Arrival.selfSimilar()
			if err != nil {
				return stochastic.Config{}, err
			}
			cfg.SelfSimilar = s
		default:
			return stochastic.Config{}, fmt.Errorf("sweep: unknown arrival process %q", w.Arrival.Process)
		}
	} else {
		var err error
		if cfg.Dist, err = w.dist(); err != nil {
			return stochastic.Config{}, err
		}
	}
	var err error
	if cfg.Spatial, err = w.spatial(); err != nil {
		return stochastic.Config{}, err
	}
	return cfg, nil
}

// BurstyGrid is the stock bursty/self-similar/priority scenario sweep:
// an on/off MMPP hotspot, a deterministic-dwell two-rate MMPP, a
// self-similar uniform-random workload and a priority-tagged Poisson
// workload, on the AMBA bus and a ×pipes mesh. Like ScenarioGrid it is
// pinned by the kernel-differential matrix and a golden artifact
// (testdata/golden/bursty.json).
func BurstyGrid() Grid {
	return Grid{
		Workloads: []Workload{
			{Kind: KindStochastic, Cores: 4, Count: 300,
				Pattern: "hotspot", PatternW: 2, PatternH: 2,
				Hotspot: []float64{0, 0, 0.6},
				Arrival: &Arrival{Process: ProcessMMPP,
					Gaps: []float64{3, 0}, Dwells: []float64{80, 160}}},
			{Kind: KindStochastic, Cores: 4, Count: 300,
				Pattern: "uniform", PatternW: 2, PatternH: 2,
				Arrival: &Arrival{Process: ProcessMMPP,
					Gaps: []float64{4, 16}, Dwells: []float64{100, 200},
					DwellDist: DwellDet}},
			{Kind: KindStochastic, Cores: 4, Count: 300,
				Pattern: "uniform", PatternW: 2, PatternH: 2,
				Arrival: &Arrival{Process: ProcessSelfSimilar,
					Sources: 8, Hurst: 0.8, OnMean: 50, OffMean: 100, PeakGap: 4}},
			{Kind: KindStochastic, Cores: 4, Count: 300,
				Pattern: "transpose", PatternW: 2, PatternH: 2,
				Dist: "poisson", MeanGap: 6,
				Classes: []float64{0.5, 0.3, 0.2}},
		},
		Fabrics: []Fabric{
			{Interconnect: FabricAMBA},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 3},
		},
	}
}
