package sweep

import (
	"math/rand"
	"strings"
	"testing"
)

func TestArrivalWorkloadValidation(t *testing.T) {
	mmpp := &Arrival{Process: ProcessMMPP, Gaps: []float64{3, 0}, Dwells: []float64{80, 160}}
	bad := []struct {
		name string
		w    Workload
	}{
		{"arrival with dist", Workload{Kind: KindStochastic, Cores: 2, Dist: "poisson", Arrival: mmpp}},
		{"arrival with mean_gap", Workload{Kind: KindStochastic, Cores: 2, MeanGap: 8, Arrival: mmpp}},
		{"unknown process", Workload{Kind: KindStochastic, Cores: 2,
			Arrival: &Arrival{Process: "weibull"}}},
		{"mmpp with selfsim fields", Workload{Kind: KindStochastic, Cores: 2,
			Arrival: &Arrival{Process: ProcessMMPP, Gaps: []float64{3, 0},
				Dwells: []float64{80, 160}, Hurst: 0.8}}},
		{"selfsim with mmpp fields", Workload{Kind: KindStochastic, Cores: 2,
			Arrival: &Arrival{Process: ProcessSelfSimilar, Sources: 8, Hurst: 0.8,
				OnMean: 50, OffMean: 100, PeakGap: 4, Gaps: []float64{1, 2}}}},
		{"bad dwell dist", Workload{Kind: KindStochastic, Cores: 2,
			Arrival: &Arrival{Process: ProcessMMPP, Gaps: []float64{3, 0},
				Dwells: []float64{80, 160}, DwellDist: "weibull"}}},
		{"bad classes", Workload{Kind: KindStochastic, Cores: 2, Dist: "poisson",
			Classes: []float64{-1, 1}}},
		{"tg with arrival", Workload{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8,
			Arrival: mmpp}},
		{"tg with classes", Workload{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8,
			Classes: []float64{1, 1}}},
	}
	for _, tc := range bad {
		if err := tc.w.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, tc.w)
		}
	}
	good := Workload{Kind: KindStochastic, Cores: 2, Count: 100, Arrival: mmpp,
		Classes: []float64{2, 1}}
	if err := good.validate(); err != nil {
		t.Fatalf("valid arrival workload rejected: %v", err)
	}
	cfg, err := good.StochasticConfig(7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MMPP == nil || cfg.Seed != 7 || len(cfg.Classes) != 2 {
		t.Fatalf("compiled config = %+v", cfg)
	}
}

func TestArrivalWorkloadLabels(t *testing.T) {
	labels := map[string]Workload{
		"stochastic-mmpp2/4P/300": {Kind: KindStochastic, Cores: 4, Count: 300,
			Arrival: &Arrival{Process: ProcessMMPP, Gaps: []float64{3, 0}, Dwells: []float64{80, 160}}},
		"stochastic-mmpp2det/4P/300": {Kind: KindStochastic, Cores: 4, Count: 300,
			Arrival: &Arrival{Process: ProcessMMPP, Gaps: []float64{4, 16},
				Dwells: []float64{100, 200}, DwellDist: DwellDet}},
		"stochastic-selfsimH0.8x8/4P/300": {Kind: KindStochastic, Cores: 4, Count: 300,
			Arrival: &Arrival{Process: ProcessSelfSimilar, Sources: 8, Hurst: 0.8,
				OnMean: 50, OffMean: 100, PeakGap: 4}},
		"stochastic-poisson-prio3/4P/300": {Kind: KindStochastic, Cores: 4, Count: 300,
			Dist: "poisson", Classes: []float64{0.5, 0.3, 0.2}},
	}
	for want, w := range labels {
		if got := w.Label(); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
}

// TestKernelDifferentialBursty pins the stock bursty/self-similar/priority
// grid into the kernel-equivalence gate: every BurstyGrid point must
// produce byte-identical JSON and CSV artifacts under the strict, skip and
// event kernels.
func TestKernelDifferentialBursty(t *testing.T) {
	assertKernelDifferential(t, BurstyGrid().Expand())
}

// randomArrivalPoints draws a randomized-but-seeded set of MMPP and
// self-similar workloads on a sharded ×pipes mesh: the property-test
// corpus for the kernel × shard determinism matrix.
func randomArrivalPoints(seed int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	var ws []Workload
	for i := 0; i < n; i++ {
		w := Workload{
			Kind:     KindStochastic,
			Cores:    4,
			Count:    150,
			Pattern:  []string{"uniform", "transpose", "hotspot"}[rng.Intn(3)],
			PatternW: 2, PatternH: 2,
		}
		if w.Pattern == "hotspot" {
			w.Hotspot = []float64{0, 0.2 + 0.6*rng.Float64()}
		}
		if rng.Intn(4) > 0 {
			w.Classes = []float64{1 + rng.Float64(), rng.Float64(), 0.5}
		}
		if i%2 == 0 {
			states := 2 + rng.Intn(3)
			m := &Arrival{Process: ProcessMMPP}
			for s := 0; s < states; s++ {
				gap := float64(2 + rng.Intn(18))
				if s > 0 && rng.Intn(3) == 0 {
					gap = 0 // silent state
				}
				m.Gaps = append(m.Gaps, gap)
				m.Dwells = append(m.Dwells, float64(50+rng.Intn(350)))
			}
			if m.Gaps[0] == 0 {
				m.Gaps[0] = 4
			}
			if rng.Intn(2) == 0 {
				m.DwellDist = DwellDet
			}
			w.Arrival = m
		} else {
			w.Arrival = &Arrival{
				Process: ProcessSelfSimilar,
				Sources: 4 + rng.Intn(12),
				Hurst:   0.55 + 0.35*rng.Float64(),
				OnMean:  20 + 100*rng.Float64(),
				OffMean: 20 + 200*rng.Float64(),
				PeakGap: 2 + 6*rng.Float64(),
			}
		}
		ws = append(ws, w)
	}
	g := Grid{
		Workloads: ws,
		Fabrics:   []Fabric{{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 3}},
		Seeds:     []int64{rng.Int63n(1 << 30)},
	}
	return g.Expand()
}

// TestArrivalPropertyDifferential is the randomized half of the arrival
// determinism gate: seeded-random MMPP and self-similar configurations ×
// the full kernel matrix × shard counts {1, 4} must serialise
// byte-identical artifacts. The draw is seeded, so a failure reproduces.
func TestArrivalPropertyDifferential(t *testing.T) {
	points := randomArrivalPoints(20250808, 4)
	if err := (Grid{Workloads: []Workload{points[0].Workload},
		Fabrics: []Fabric{points[0].Fabric}}).Validate(); err != nil {
		t.Fatalf("random workload invalid: %v", err)
	}
	assertKernelDifferential(t, points)
	assertShardDifferential(t, points, diffKernels(), []int{4})
}

// TestGoldenBurstyScenarios snapshots the stock bursty grid under
// testdata/golden/bursty.json: any drift in the arrival-process state
// machines, the class draw or their discretization fails CI with a
// diffable artifact. Regenerate deliberately with -update.
func TestGoldenBurstyScenarios(t *testing.T) {
	results, err := Runner{}.Run(BurstyGrid().Expand())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d (%s @ %s): %s", r.ID, r.Workload, r.Fabric, r.Err)
		}
	}
	for _, r := range results {
		if r.Transactions == 0 {
			t.Fatalf("point %d (%s) completed no transactions", r.ID, r.Workload)
		}
	}
	golden(t, "bursty", results)
}

// TestBurstyGridParsesStrict round-trips an arrival workload through the
// strict grid parser.
func TestBurstyGridParsesStrict(t *testing.T) {
	src := `{
		"workloads": [{"kind":"stochastic","cores":4,"count":100,
			"arrival":{"process":"mmpp","gaps":[3,0],"dwells":[80,160]}}],
		"fabrics": [{"interconnect":"amba"}]
	}`
	g, err := ParseGrid(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Workloads[0].Arrival == nil {
		t.Fatal("arrival axis lost in parsing")
	}
	bad := strings.Replace(src, `"arrival"`, `"arival"`, 1)
	if _, err := ParseGrid(strings.NewReader(bad)); err == nil {
		t.Fatal("typo'd arrival key must be rejected")
	}
}
