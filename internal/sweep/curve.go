package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"noctg/internal/analytic"
	"noctg/internal/guard"
)

// This file implements the canonical NoC load–latency evaluation: sweep
// the injection load of one workload/fabric pair from light to heavy,
// measure each level with the phased warmup/epoch methodology, and report
// the saturation point — the load at which latency departs from its
// zero-load plateau and throughput stops scaling.

// DefaultCurveGaps is the stock injection-load axis: mean
// inter-transaction gaps from light load (gap 48) to far past saturation
// (gap 0.5), geometrically spaced so the knee is well resolved.
var DefaultCurveGaps = []float64{48, 32, 24, 16, 12, 8, 6, 4, 3, 2, 1.5, 1, 0.5}

// curveOpenCount makes curve generators effectively open-ended: the load
// level, not the transaction budget, ends the measurement.
const curveOpenCount = 1 << 30

// Saturation detection thresholds. A load level is saturated when any of:
//
//   - marginal-throughput knee: raising the offered load yields less than
//     satMarginalFrac of the proportional throughput gain (the masters are
//     closed-loop — one outstanding transaction each — so past the knee
//     the accepted-throughput curve flattens onto the service-capacity
//     asymptote instead of collapsing);
//   - latency blow-up: the request-latency mean reaches satLatencyFactor ×
//     the lightest level's (source queueing dominating service time);
//   - throughput regression: accepted throughput falls as offered load
//     rises (post-knee interference);
//   - the level's own epoch trend showed unbounded latency growth.
const (
	satLatencyFactor = 3.0
	satThroughputTol = 0.02
	satMarginalFrac  = 0.15
)

// Curve modes.
const (
	// CurveModeUniform simulates every level of the load axis (the
	// default; the empty string means the same).
	CurveModeUniform = "uniform"
	// CurveModeAdaptive simulates a subset of the axis: the lightest
	// level (the latency baseline), a cluster seeded at the analytic
	// knee prediction, and the heaviest level, then refines the knee
	// bracket by golden-section interval splitting until the first
	// saturated level and its nearest lighter simulated level are
	// adjacent on the axis — so the detected knee compares the same
	// neighbouring levels uniform mode would. Skipped levels are
	// recorded as estimated points carrying the model's predictions,
	// never dropped.
	CurveModeAdaptive = "adaptive"
)

// CurveSpec names one load–latency curve: a stochastic workload whose
// MeanGap axis is swept over Gaps, one fabric, and the phased measurement
// configuration applied at every load level.
type CurveSpec struct {
	Name string `json:"name"`
	// Workload is the traffic template; MeanGap and Count are overridden
	// per load level (stochastic workloads only — TG replay has a fixed
	// recorded load).
	Workload Workload `json:"workload"`
	Fabric   Fabric   `json:"fabric"`
	// ClockPeriodNS defaults to the paper's 5 ns; Seed to 1.
	ClockPeriodNS uint64 `json:"clock_period_ns,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	// Gaps is the load axis (mean inter-transaction gap in cycles); empty
	// selects DefaultCurveGaps. Levels run in descending-gap (ascending
	// load) order regardless of input order.
	Gaps []float64 `json:"gaps,omitempty"`
	// Measure is the per-level phased methodology; EpochCycles must be set
	// (open-loop levels never complete, so epochs are the only windows).
	Measure Measure `json:"measure"`
	// Retry is the per-level retry/deadline policy (see RetryPolicy); the
	// runner-level policy overrides it.
	Retry *RetryPolicy `json:"retry,omitempty"`
	// Mode selects CurveModeUniform (default) or CurveModeAdaptive. The
	// mode is result-determining: adaptive curves carry estimated points.
	Mode string `json:"mode,omitempty"`
}

// withDefaults resolves the optional axes.
func (cs CurveSpec) withDefaults() CurveSpec {
	if cs.ClockPeriodNS == 0 {
		cs.ClockPeriodNS = 5
	}
	if cs.Seed == 0 {
		cs.Seed = 1
	}
	if len(cs.Gaps) == 0 {
		cs.Gaps = DefaultCurveGaps
	}
	return cs
}

// Validate checks the curve specification.
func (cs CurveSpec) Validate() error {
	if cs.Name == "" {
		return fmt.Errorf("sweep: curve needs a name")
	}
	d := cs.withDefaults()
	if d.Workload.Kind != KindStochastic {
		return fmt.Errorf("sweep: curve %q needs a stochastic workload (TG replay has a fixed load)", cs.Name)
	}
	if err := d.Workload.validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	if _, err := d.Fabric.interconnect(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	for i, g := range d.Gaps {
		if g <= 0 || g > 1e9 || g != g {
			return fmt.Errorf("sweep: curve %q: gap %d is %g, want (0, 1e9]", cs.Name, i, g)
		}
	}
	if err := d.Measure.Validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	if d.Measure.EpochCycles == 0 {
		return fmt.Errorf("sweep: curve %q: measure.epoch_cycles must be set (open-loop levels never complete)", cs.Name)
	}
	if err := d.Retry.Validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	switch d.Mode {
	case "", CurveModeUniform:
	case CurveModeAdaptive:
		// The adaptive planner needs a compilable estimator; surface the
		// failure at validation, not mid-sweep.
		if _, err := NewEstimator(d.Workload, d.Fabric); err != nil {
			return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
		}
	default:
		return fmt.Errorf("sweep: curve %q: unknown mode %q", cs.Name, d.Mode)
	}
	return nil
}

// CurvePoint is one measured load level.
type CurvePoint struct {
	// MeanGap is the level's mean inter-transaction gap; OfferedTPK the
	// corresponding offered load in transactions per thousand cycles
	// (cores × 1000/(gap+1), the generators' scheduling floor).
	MeanGap    float64 `json:"mean_gap"`
	OfferedTPK float64 `json:"offered_tpk"`
	// ThroughputTPK is the measured steady-state throughput; LatencyMean/
	// LatencyMax the measured assert-to-response request latency (service
	// plus source queueing — the metric that explodes at saturation).
	ThroughputTPK float64 `json:"throughput_tpk"`
	LatencyMean   float64 `json:"latency_mean_cycles"`
	LatencyMax    uint64  `json:"latency_max_cycles"`
	Reads         uint64  `json:"reads"`
	// Epochs is the number of measurement epochs the level ran;
	// CIHalfWidthRel and Converged report the adaptive-stopping outcome.
	Epochs         int     `json:"epochs"`
	CIHalfWidthRel float64 `json:"ci_half_width_rel"`
	Converged      bool    `json:"converged"`
	// Saturated marks the level as past the saturation knee (set by the
	// curve-level detector; see Curve.Saturation).
	Saturated bool   `json:"saturated"`
	Err       string `json:"err,omitempty"`
	// Estimated marks a level the adaptive planner skipped: its latency
	// and throughput are the analytic model's predictions, not
	// measurements (Reads/Epochs stay zero). Uniform curves never set it.
	Estimated bool `json:"estimated,omitempty"`
	// Violation carries the structured guard diagnostic — watchdog
	// violation or recovered worker panic — with the level's identity
	// (curve name, gap) prefixed onto its message, so a failed curve level
	// is as debuggable as a failed grid point. Omitted on clean levels, so
	// fault-free artifacts are unchanged.
	Violation *guard.Violation `json:"violation,omitempty"`
}

// SaturationPoint names the first saturated load level of a curve.
type SaturationPoint struct {
	// Index is the level's position in Points; MeanGap its gap.
	Index   int     `json:"index"`
	MeanGap float64 `json:"mean_gap"`
	// ThroughputTPK is the curve's saturation throughput: the maximum
	// measured throughput across all levels (the post-knee plateau).
	ThroughputTPK float64 `json:"throughput_tpk"`
}

// Curve is one complete load–latency curve.
type Curve struct {
	Name          string       `json:"name"`
	Workload      string       `json:"workload"`
	Fabric        string       `json:"fabric"`
	ClockPeriodNS uint64       `json:"clock_period_ns"`
	Seed          int64        `json:"seed"`
	Points        []CurvePoint `json:"points"`
	// Saturation is the detected saturation point (nil when no level
	// saturated — extend the load axis). For adaptive curves it always
	// names a simulated level.
	Saturation *SaturationPoint `json:"saturation,omitempty"`
	// Mode is CurveModeAdaptive for adaptively-sampled curves (empty for
	// uniform, keeping legacy artifacts byte-identical);
	// SimulatedLevels/EstimatedLevels log the adaptive planner's savings.
	Mode            string `json:"mode,omitempty"`
	SimulatedLevels int    `json:"simulated_levels,omitempty"`
	EstimatedLevels int    `json:"estimated_levels,omitempty"`
	// Analytic carries the model prediction that seeded the adaptive
	// planner.
	Analytic *analytic.Estimate `json:"analytic,omitempty"`
}

// RunCurve measures one load–latency curve, parallelising the load levels
// over the runner's worker pool.
func (r Runner) RunCurve(spec CurveSpec) (Curve, error) {
	curves, err := r.RunCurves([]CurveSpec{spec})
	if err != nil {
		return Curve{}, err
	}
	return curves[0], nil
}

// RunCurves measures a set of curves, parallelising every (curve, load
// level) pair over one worker pool. Results are deterministic and ordered
// by input spec regardless of worker count: adaptive curves advance in
// lockstep rounds, so every round's task list — and therefore every
// simulated level — is a pure function of earlier results, never of
// worker scheduling.
func (r Runner) RunCurves(specs []CurveSpec) ([]Curve, error) {
	resolved := make([]CurveSpec, len(specs))
	for i, cs := range specs {
		if err := cs.Validate(); err != nil {
			return nil, fmt.Errorf("curve %d: %w", i, err)
		}
		resolved[i] = cs.withDefaults()
		// Ascending load = descending gap; stable ordering makes the
		// saturation scan well-defined.
		gaps := append([]float64(nil), resolved[i].Gaps...)
		sort.Sort(sort.Reverse(sort.Float64Slice(gaps)))
		resolved[i].Gaps = gaps
	}

	states := make([]*curveState, len(resolved))
	for i := range resolved {
		st := &curveState{cs: resolved[i], sim: map[int]CurvePoint{}}
		if resolved[i].Mode == CurveModeAdaptive {
			est, err := NewEstimator(resolved[i].Workload, resolved[i].Fabric)
			if err != nil {
				return nil, fmt.Errorf("curve %q: %w", resolved[i].Name, err)
			}
			st.est = est
			estimate := est.Estimate()
			st.estimate = &estimate
		}
		states[i] = st
	}

	type level struct{ spec, gap int }
	cache := &programCache{}
	for {
		var levels []level
		for si, st := range states {
			for _, gi := range st.nextLevels() {
				levels = append(levels, level{spec: si, gap: gi})
			}
		}
		if len(levels) == 0 {
			break
		}
		pts, err := Map(r.Workers, levels, func(_ int, l level) (CurvePoint, error) {
			return r.runCurveLevel(cache, resolved[l.spec], resolved[l.spec].Gaps[l.gap]), nil
		})
		if err != nil {
			return nil, err
		}
		for k, l := range levels {
			states[l.spec].sim[l.gap] = pts[k]
		}
	}

	curves := make([]Curve, len(resolved))
	for si, st := range states {
		curves[si] = st.assemble()
	}
	return curves, nil
}

// curveState tracks one curve's progress through the lockstep rounds.
type curveState struct {
	cs       CurveSpec
	est      *analytic.Estimator // adaptive only
	estimate *analytic.Estimate
	sim      map[int]CurvePoint // simulated levels by axis index
	seeded   bool
}

// nextLevels returns the axis indices to simulate this round (empty when
// the curve is complete). Uniform curves run the whole axis in round
// zero; adaptive curves seed knee-centred levels, then refine.
func (st *curveState) nextLevels() []int {
	n := len(st.cs.Gaps)
	if st.est == nil {
		if st.seeded {
			return nil
		}
		st.seeded = true
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	if !st.seeded {
		st.seeded = true
		k := st.kneeIndex()
		pick := map[int]bool{0: true, n - 1: true}
		for _, i := range []int{k - 1, k, k + 1} {
			if i >= 0 && i < n {
				pick[i] = true
			}
		}
		idx := make([]int, 0, len(pick))
		for i := range pick {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		return idx
	}
	if len(st.sim) == n {
		return nil
	}
	s, p := st.satBracket()
	if s < 0 || p < 0 {
		return nil
	}
	if p == s-1 {
		// The bracket is tight, but the detection at s is only trustworthy
		// if the adjacent step into s-1 was also inspected: the marginal
		// criterion compares neighbouring levels, and a subsequence that
		// skips s-2 could place the first trigger one step late. Confirm
		// with s-2 before declaring the knee.
		if s-1 > 0 {
			if _, ok := st.sim[s-2]; !ok {
				return []int{s - 2}
			}
		}
		return nil
	}
	// Golden-section interior split of the (p, s) bracket, snapped to the
	// nearest unsimulated axis index.
	m := s - int(math.Round(0.618*float64(s-p)))
	if m <= p {
		m = p + 1
	}
	if m >= s {
		m = s - 1
	}
	for d := 0; d < n; d++ {
		for _, c := range []int{m - d, m + d} {
			if c > p && c < s {
				if _, ok := st.sim[c]; !ok {
					return []int{c}
				}
			}
		}
	}
	return nil
}

// kneeIndex seeds the adaptive traversal: the axis index where the
// saturation detector, run on the model's own predicted curve over this
// ladder, first fires. That mirrors the operational definition a uniform
// run is judged by, ladder quantization included. When the model's curve
// never trips the detector, fall back to the continuous knee prediction
// snapped to the nearest gap (ties toward lighter load, where simulation
// is cheaper).
func (st *curveState) kneeIndex() int {
	if k := PredictSaturationIndex(st.est, st.cs.Gaps); k >= 0 {
		return k
	}
	knee := PredictedKneeGap(st.est)
	best, bestDist := len(st.cs.Gaps)-1, math.Inf(1)
	for i, g := range st.cs.Gaps {
		if d := math.Abs(g - knee); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// simSeq returns the simulated levels in axis order, plus their axis
// indices.
func (st *curveState) simSeq() ([]CurvePoint, []int) {
	idx := make([]int, 0, len(st.sim))
	for i := range st.sim {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	seq := make([]CurvePoint, len(idx))
	for k, i := range idx {
		seq[k] = st.sim[i]
	}
	return seq, idx
}

// satBracket runs the saturation detector on the simulated subsequence
// and returns (axis index of the first saturated level, axis index of
// the nearest lighter error-free simulated level). s = -1 when nothing
// saturated; p = -1 when no lighter level exists.
func (st *curveState) satBracket() (s, p int) {
	seq, idx := st.simSeq()
	sat := detectSaturation(seq)
	if sat == nil {
		return -1, -1
	}
	s = idx[sat.Index]
	p = -1
	for k := sat.Index - 1; k >= 0; k-- {
		if seq[k].Err == "" {
			p = idx[k]
			break
		}
	}
	return s, p
}

// assemble builds the final curve: uniform curves report the simulated
// axis as-is; adaptive curves interleave measured and estimated levels
// and re-run the detector on the measured subsequence only.
func (st *curveState) assemble() Curve {
	cs := st.cs
	c := Curve{
		Name:          cs.Name,
		Workload:      cs.Workload.Label(),
		Fabric:        cs.Fabric.Label(),
		ClockPeriodNS: cs.ClockPeriodNS,
		Seed:          cs.Seed,
	}
	if st.est == nil {
		pts := make([]CurvePoint, len(cs.Gaps))
		for i := range cs.Gaps {
			pts[i] = st.sim[i]
		}
		c.Points = pts
		c.Saturation = detectSaturation(c.Points)
		return c
	}
	seq, idx := st.simSeq()
	sat := detectSaturation(seq)
	satAxis := -1
	if sat != nil {
		satAxis = idx[sat.Index]
	}
	pts := make([]CurvePoint, len(cs.Gaps))
	k := 0
	for i, gap := range cs.Gaps {
		if k < len(idx) && idx[k] == i {
			pts[i] = seq[k]
			k++
			continue
		}
		cp := CurvePoint{
			MeanGap:       gap,
			OfferedTPK:    float64(cs.Workload.Cores) * 1000 / (gap + 1),
			ThroughputTPK: st.est.ThroughputAt(gap),
			LatencyMean:   st.est.LatencyAt(gap),
			Estimated:     true,
			Saturated:     satAxis >= 0 && i >= satAxis,
		}
		pts[i] = cp
	}
	c.Points = pts
	if sat != nil {
		c.Saturation = &SaturationPoint{
			Index:         satAxis,
			MeanGap:       sat.MeanGap,
			ThroughputTPK: sat.ThroughputTPK,
		}
	}
	c.Mode = CurveModeAdaptive
	c.SimulatedLevels = len(idx)
	c.EstimatedLevels = len(cs.Gaps) - len(idx)
	c.Analytic = st.estimate
	return c
}

// runCurveLevel measures one load level: the template workload at the
// given gap, effectively unbounded transactions, phased measurement, no
// tracing (an open-loop monitor event log would grow without bound).
// Levels run under the same retry policy as grid points, and a failing
// level keeps its full violation context — a worker panic's recovery
// names the curve and gap, not just a generic failed point.
func (r Runner) runCurveLevel(cache *programCache, cs CurveSpec, gap float64) CurvePoint {
	w := cs.Workload
	w.MeanGap = gap
	w.Count = curveOpenCount
	m := cs.Measure
	m.DrainCycles = 0 // open-loop levels have nothing to drain into
	res, _, _ := r.runPointRetry(cache, Point{
		Workload:      w,
		Fabric:        cs.Fabric,
		ClockPeriodNS: cs.ClockPeriodNS,
		Seed:          cs.Seed,
		Measure:       &m,
		Retry:         cs.Retry,
	}, false, 0, nil)
	cp := CurvePoint{
		MeanGap:    gap,
		OfferedTPK: float64(w.Cores) * 1000 / (gap + 1),
		Err:        res.Err,
	}
	if res.Err != "" {
		if res.Violation != nil {
			v := *res.Violation
			v.Msg = fmt.Sprintf("curve %s gap %g: %s", cs.Name, gap, v.Msg)
			cp.Violation = &v
		}
		return cp
	}
	cp.ThroughputTPK = res.ThroughputTPK
	cp.Reads = res.Reads
	if ps := res.Phases; ps != nil {
		cp.LatencyMean = ps.ReqLatency.Mean
		cp.LatencyMax = ps.ReqLatency.Max
		cp.Epochs = len(ps.Epochs)
		cp.CIHalfWidthRel = ps.CIHalfWidthRel
		cp.Converged = ps.Converged
		cp.Saturated = ps.Saturated
	}
	return cp
}

// detectSaturation marks every saturated level and returns the first one.
// Levels are ordered by ascending load; the lightest error-free level
// anchors the zero-load latency baseline, so one failed level degrades
// the baseline instead of discarding the whole curve's detection.
func detectSaturation(points []CurvePoint) *SaturationPoint {
	baseIdx := -1
	for i := range points {
		if points[i].Err == "" {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		return nil
	}
	base := points[baseIdx].LatencyMean
	var maxTPK float64
	for _, p := range points {
		if p.Err == "" && p.ThroughputTPK > maxTPK {
			maxTPK = p.ThroughputTPK
		}
	}
	var sat *SaturationPoint
	for i := range points {
		p := &points[i]
		if p.Err != "" {
			continue
		}
		if i > baseIdx && base > 0 && p.LatencyMean >= satLatencyFactor*base {
			p.Saturated = true
		}
		if prev := prevOK(points, i); prev != nil {
			if p.ThroughputTPK < prev.ThroughputTPK*(1-satThroughputTol) {
				p.Saturated = true
			}
			// Marginal-throughput knee: compare the relative throughput gain
			// against the relative offered-load increase.
			offGain := p.OfferedTPK/prev.OfferedTPK - 1
			tpkGain := p.ThroughputTPK/prev.ThroughputTPK - 1
			if offGain > 0 && prev.ThroughputTPK > 0 && tpkGain < satMarginalFrac*offGain {
				p.Saturated = true
			}
		}
		if p.Saturated && sat == nil {
			sat = &SaturationPoint{Index: i, MeanGap: p.MeanGap, ThroughputTPK: maxTPK}
		}
	}
	return sat
}

// prevOK returns the closest preceding error-free level, or nil.
func prevOK(points []CurvePoint, i int) *CurvePoint {
	for j := i - 1; j >= 0; j-- {
		if points[j].Err == "" {
			return &points[j]
		}
	}
	return nil
}

// curveCSVHeader is the fixed column set of WriteCurvesCSV.
var curveCSVHeader = []string{
	"curve", "workload", "fabric", "mode", "mean_gap", "offered_tpk", "throughput_tpk",
	"latency_mean_cycles", "latency_max_cycles", "reads", "epochs",
	"ci_half_width_rel", "converged", "saturated", "estimated", "err",
}

// WriteCurvesJSON renders curves as indented JSON with stable ordering.
func WriteCurvesJSON(w io.Writer, curves []Curve) error {
	return writeJSON(w, curves)
}

// WriteCurvesCSV renders every curve point as one CSV row.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(curveCSVHeader); err != nil {
		return err
	}
	for _, c := range curves {
		mode := c.Mode
		if mode == "" {
			mode = CurveModeUniform
		}
		for _, p := range c.Points {
			rec := []string{
				c.Name,
				c.Workload,
				c.Fabric,
				mode,
				strconv.FormatFloat(p.MeanGap, 'g', -1, 64),
				strconv.FormatFloat(p.OfferedTPK, 'g', -1, 64),
				strconv.FormatFloat(p.ThroughputTPK, 'g', -1, 64),
				strconv.FormatFloat(p.LatencyMean, 'g', -1, 64),
				strconv.FormatUint(p.LatencyMax, 10),
				strconv.FormatUint(p.Reads, 10),
				strconv.Itoa(p.Epochs),
				strconv.FormatFloat(p.CIHalfWidthRel, 'g', -1, 64),
				strconv.FormatBool(p.Converged),
				strconv.FormatBool(p.Saturated),
				strconv.FormatBool(p.Estimated),
				p.Err,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
