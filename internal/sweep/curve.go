package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"noctg/internal/guard"
)

// This file implements the canonical NoC load–latency evaluation: sweep
// the injection load of one workload/fabric pair from light to heavy,
// measure each level with the phased warmup/epoch methodology, and report
// the saturation point — the load at which latency departs from its
// zero-load plateau and throughput stops scaling.

// DefaultCurveGaps is the stock injection-load axis: mean
// inter-transaction gaps from light load (gap 48) to far past saturation
// (gap 0.5), geometrically spaced so the knee is well resolved.
var DefaultCurveGaps = []float64{48, 32, 24, 16, 12, 8, 6, 4, 3, 2, 1.5, 1, 0.5}

// curveOpenCount makes curve generators effectively open-ended: the load
// level, not the transaction budget, ends the measurement.
const curveOpenCount = 1 << 30

// Saturation detection thresholds. A load level is saturated when any of:
//
//   - marginal-throughput knee: raising the offered load yields less than
//     satMarginalFrac of the proportional throughput gain (the masters are
//     closed-loop — one outstanding transaction each — so past the knee
//     the accepted-throughput curve flattens onto the service-capacity
//     asymptote instead of collapsing);
//   - latency blow-up: the request-latency mean reaches satLatencyFactor ×
//     the lightest level's (source queueing dominating service time);
//   - throughput regression: accepted throughput falls as offered load
//     rises (post-knee interference);
//   - the level's own epoch trend showed unbounded latency growth.
const (
	satLatencyFactor = 3.0
	satThroughputTol = 0.02
	satMarginalFrac  = 0.15
)

// CurveSpec names one load–latency curve: a stochastic workload whose
// MeanGap axis is swept over Gaps, one fabric, and the phased measurement
// configuration applied at every load level.
type CurveSpec struct {
	Name string `json:"name"`
	// Workload is the traffic template; MeanGap and Count are overridden
	// per load level (stochastic workloads only — TG replay has a fixed
	// recorded load).
	Workload Workload `json:"workload"`
	Fabric   Fabric   `json:"fabric"`
	// ClockPeriodNS defaults to the paper's 5 ns; Seed to 1.
	ClockPeriodNS uint64 `json:"clock_period_ns,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	// Gaps is the load axis (mean inter-transaction gap in cycles); empty
	// selects DefaultCurveGaps. Levels run in descending-gap (ascending
	// load) order regardless of input order.
	Gaps []float64 `json:"gaps,omitempty"`
	// Measure is the per-level phased methodology; EpochCycles must be set
	// (open-loop levels never complete, so epochs are the only windows).
	Measure Measure `json:"measure"`
	// Retry is the per-level retry/deadline policy (see RetryPolicy); the
	// runner-level policy overrides it.
	Retry *RetryPolicy `json:"retry,omitempty"`
}

// withDefaults resolves the optional axes.
func (cs CurveSpec) withDefaults() CurveSpec {
	if cs.ClockPeriodNS == 0 {
		cs.ClockPeriodNS = 5
	}
	if cs.Seed == 0 {
		cs.Seed = 1
	}
	if len(cs.Gaps) == 0 {
		cs.Gaps = DefaultCurveGaps
	}
	return cs
}

// Validate checks the curve specification.
func (cs CurveSpec) Validate() error {
	if cs.Name == "" {
		return fmt.Errorf("sweep: curve needs a name")
	}
	d := cs.withDefaults()
	if d.Workload.Kind != KindStochastic {
		return fmt.Errorf("sweep: curve %q needs a stochastic workload (TG replay has a fixed load)", cs.Name)
	}
	if err := d.Workload.validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	if _, err := d.Fabric.interconnect(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	for i, g := range d.Gaps {
		if g <= 0 || g > 1e9 || g != g {
			return fmt.Errorf("sweep: curve %q: gap %d is %g, want (0, 1e9]", cs.Name, i, g)
		}
	}
	if err := d.Measure.Validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	if d.Measure.EpochCycles == 0 {
		return fmt.Errorf("sweep: curve %q: measure.epoch_cycles must be set (open-loop levels never complete)", cs.Name)
	}
	if err := d.Retry.Validate(); err != nil {
		return fmt.Errorf("sweep: curve %q: %w", cs.Name, err)
	}
	return nil
}

// CurvePoint is one measured load level.
type CurvePoint struct {
	// MeanGap is the level's mean inter-transaction gap; OfferedTPK the
	// corresponding offered load in transactions per thousand cycles
	// (cores × 1000/(gap+1), the generators' scheduling floor).
	MeanGap    float64 `json:"mean_gap"`
	OfferedTPK float64 `json:"offered_tpk"`
	// ThroughputTPK is the measured steady-state throughput; LatencyMean/
	// LatencyMax the measured assert-to-response request latency (service
	// plus source queueing — the metric that explodes at saturation).
	ThroughputTPK float64 `json:"throughput_tpk"`
	LatencyMean   float64 `json:"latency_mean_cycles"`
	LatencyMax    uint64  `json:"latency_max_cycles"`
	Reads         uint64  `json:"reads"`
	// Epochs is the number of measurement epochs the level ran;
	// CIHalfWidthRel and Converged report the adaptive-stopping outcome.
	Epochs         int     `json:"epochs"`
	CIHalfWidthRel float64 `json:"ci_half_width_rel"`
	Converged      bool    `json:"converged"`
	// Saturated marks the level as past the saturation knee (set by the
	// curve-level detector; see Curve.Saturation).
	Saturated bool   `json:"saturated"`
	Err       string `json:"err,omitempty"`
	// Violation carries the structured guard diagnostic — watchdog
	// violation or recovered worker panic — with the level's identity
	// (curve name, gap) prefixed onto its message, so a failed curve level
	// is as debuggable as a failed grid point. Omitted on clean levels, so
	// fault-free artifacts are unchanged.
	Violation *guard.Violation `json:"violation,omitempty"`
}

// SaturationPoint names the first saturated load level of a curve.
type SaturationPoint struct {
	// Index is the level's position in Points; MeanGap its gap.
	Index   int     `json:"index"`
	MeanGap float64 `json:"mean_gap"`
	// ThroughputTPK is the curve's saturation throughput: the maximum
	// measured throughput across all levels (the post-knee plateau).
	ThroughputTPK float64 `json:"throughput_tpk"`
}

// Curve is one complete load–latency curve.
type Curve struct {
	Name          string       `json:"name"`
	Workload      string       `json:"workload"`
	Fabric        string       `json:"fabric"`
	ClockPeriodNS uint64       `json:"clock_period_ns"`
	Seed          int64        `json:"seed"`
	Points        []CurvePoint `json:"points"`
	// Saturation is the detected saturation point (nil when no level
	// saturated — extend the load axis).
	Saturation *SaturationPoint `json:"saturation,omitempty"`
}

// RunCurve measures one load–latency curve, parallelising the load levels
// over the runner's worker pool.
func (r Runner) RunCurve(spec CurveSpec) (Curve, error) {
	curves, err := r.RunCurves([]CurveSpec{spec})
	if err != nil {
		return Curve{}, err
	}
	return curves[0], nil
}

// RunCurves measures a set of curves, parallelising every (curve, load
// level) pair over one worker pool. Results are deterministic and ordered
// by input spec regardless of worker count.
func (r Runner) RunCurves(specs []CurveSpec) ([]Curve, error) {
	resolved := make([]CurveSpec, len(specs))
	for i, cs := range specs {
		if err := cs.Validate(); err != nil {
			return nil, fmt.Errorf("curve %d: %w", i, err)
		}
		resolved[i] = cs.withDefaults()
		// Ascending load = descending gap; stable ordering makes the
		// saturation scan well-defined.
		gaps := append([]float64(nil), resolved[i].Gaps...)
		sort.Sort(sort.Reverse(sort.Float64Slice(gaps)))
		resolved[i].Gaps = gaps
	}

	type level struct{ spec, gap int }
	var levels []level
	for si, cs := range resolved {
		for gi := range cs.Gaps {
			levels = append(levels, level{spec: si, gap: gi})
		}
	}
	cache := &programCache{}
	pts, err := Map(r.Workers, levels, func(_ int, l level) (CurvePoint, error) {
		return r.runCurveLevel(cache, resolved[l.spec], resolved[l.spec].Gaps[l.gap]), nil
	})
	if err != nil {
		return nil, err
	}

	curves := make([]Curve, len(resolved))
	k := 0
	for si, cs := range resolved {
		c := Curve{
			Name:          cs.Name,
			Workload:      cs.Workload.Label(),
			Fabric:        cs.Fabric.Label(),
			ClockPeriodNS: cs.ClockPeriodNS,
			Seed:          cs.Seed,
			Points:        pts[k : k+len(cs.Gaps) : k+len(cs.Gaps)],
		}
		k += len(cs.Gaps)
		c.Saturation = detectSaturation(c.Points)
		curves[si] = c
	}
	return curves, nil
}

// runCurveLevel measures one load level: the template workload at the
// given gap, effectively unbounded transactions, phased measurement, no
// tracing (an open-loop monitor event log would grow without bound).
// Levels run under the same retry policy as grid points, and a failing
// level keeps its full violation context — a worker panic's recovery
// names the curve and gap, not just a generic failed point.
func (r Runner) runCurveLevel(cache *programCache, cs CurveSpec, gap float64) CurvePoint {
	w := cs.Workload
	w.MeanGap = gap
	w.Count = curveOpenCount
	m := cs.Measure
	m.DrainCycles = 0 // open-loop levels have nothing to drain into
	res, _, _ := r.runPointRetry(cache, Point{
		Workload:      w,
		Fabric:        cs.Fabric,
		ClockPeriodNS: cs.ClockPeriodNS,
		Seed:          cs.Seed,
		Measure:       &m,
		Retry:         cs.Retry,
	}, false, 0, nil)
	cp := CurvePoint{
		MeanGap:    gap,
		OfferedTPK: float64(w.Cores) * 1000 / (gap + 1),
		Err:        res.Err,
	}
	if res.Err != "" {
		if res.Violation != nil {
			v := *res.Violation
			v.Msg = fmt.Sprintf("curve %s gap %g: %s", cs.Name, gap, v.Msg)
			cp.Violation = &v
		}
		return cp
	}
	cp.ThroughputTPK = res.ThroughputTPK
	cp.Reads = res.Reads
	if ps := res.Phases; ps != nil {
		cp.LatencyMean = ps.ReqLatency.Mean
		cp.LatencyMax = ps.ReqLatency.Max
		cp.Epochs = len(ps.Epochs)
		cp.CIHalfWidthRel = ps.CIHalfWidthRel
		cp.Converged = ps.Converged
		cp.Saturated = ps.Saturated
	}
	return cp
}

// detectSaturation marks every saturated level and returns the first one.
// Levels are ordered by ascending load; the lightest error-free level
// anchors the zero-load latency baseline, so one failed level degrades
// the baseline instead of discarding the whole curve's detection.
func detectSaturation(points []CurvePoint) *SaturationPoint {
	baseIdx := -1
	for i := range points {
		if points[i].Err == "" {
			baseIdx = i
			break
		}
	}
	if baseIdx < 0 {
		return nil
	}
	base := points[baseIdx].LatencyMean
	var maxTPK float64
	for _, p := range points {
		if p.Err == "" && p.ThroughputTPK > maxTPK {
			maxTPK = p.ThroughputTPK
		}
	}
	var sat *SaturationPoint
	for i := range points {
		p := &points[i]
		if p.Err != "" {
			continue
		}
		if i > baseIdx && base > 0 && p.LatencyMean >= satLatencyFactor*base {
			p.Saturated = true
		}
		if prev := prevOK(points, i); prev != nil {
			if p.ThroughputTPK < prev.ThroughputTPK*(1-satThroughputTol) {
				p.Saturated = true
			}
			// Marginal-throughput knee: compare the relative throughput gain
			// against the relative offered-load increase.
			offGain := p.OfferedTPK/prev.OfferedTPK - 1
			tpkGain := p.ThroughputTPK/prev.ThroughputTPK - 1
			if offGain > 0 && prev.ThroughputTPK > 0 && tpkGain < satMarginalFrac*offGain {
				p.Saturated = true
			}
		}
		if p.Saturated && sat == nil {
			sat = &SaturationPoint{Index: i, MeanGap: p.MeanGap, ThroughputTPK: maxTPK}
		}
	}
	return sat
}

// prevOK returns the closest preceding error-free level, or nil.
func prevOK(points []CurvePoint, i int) *CurvePoint {
	for j := i - 1; j >= 0; j-- {
		if points[j].Err == "" {
			return &points[j]
		}
	}
	return nil
}

// curveCSVHeader is the fixed column set of WriteCurvesCSV.
var curveCSVHeader = []string{
	"curve", "workload", "fabric", "mean_gap", "offered_tpk", "throughput_tpk",
	"latency_mean_cycles", "latency_max_cycles", "reads", "epochs",
	"ci_half_width_rel", "converged", "saturated", "err",
}

// WriteCurvesJSON renders curves as indented JSON with stable ordering.
func WriteCurvesJSON(w io.Writer, curves []Curve) error {
	return writeJSON(w, curves)
}

// WriteCurvesCSV renders every curve point as one CSV row.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(curveCSVHeader); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			rec := []string{
				c.Name,
				c.Workload,
				c.Fabric,
				strconv.FormatFloat(p.MeanGap, 'g', -1, 64),
				strconv.FormatFloat(p.OfferedTPK, 'g', -1, 64),
				strconv.FormatFloat(p.ThroughputTPK, 'g', -1, 64),
				strconv.FormatFloat(p.LatencyMean, 'g', -1, 64),
				strconv.FormatUint(p.LatencyMax, 10),
				strconv.FormatUint(p.Reads, 10),
				strconv.Itoa(p.Epochs),
				strconv.FormatFloat(p.CIHalfWidthRel, 'g', -1, 64),
				strconv.FormatBool(p.Converged),
				strconv.FormatBool(p.Saturated),
				p.Err,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
