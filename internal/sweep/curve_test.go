package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"noctg/internal/guard"
	"noctg/internal/platform"
)

// goldenCurveSpec is the stock curve the golden-file harness locks: the
// AMBA hotspot workload (the sharpest saturation knee in the library
// corpus) over a short load ladder, adaptive epochs to a ±5% CI.
func goldenCurveSpec() CurveSpec {
	return CurveSpec{
		Name: "hotspot-amba",
		Workload: Workload{
			Kind: KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "hotspot", PatternW: 2, PatternH: 2,
			Hotspot: []float64{0, 0, 0.6},
		},
		Fabric: Fabric{Interconnect: FabricAMBA},
		Gaps:   []float64{24, 12, 6, 4, 3, 2},
		Measure: Measure{
			WarmupCycles: 1000,
			EpochCycles:  2000,
			CITarget:     0.05,
		},
	}
}

// TestGoldenCurve locks one stock load-latency curve byte-for-byte,
// wired into the same -update flow as the other golden artifacts.
func TestGoldenCurve(t *testing.T) {
	c, err := Runner{}.RunCurve(goldenCurveSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Err != "" {
			t.Fatalf("gap %g: %s", p.MeanGap, p.Err)
		}
	}
	if c.Saturation == nil {
		t.Fatal("golden curve must detect a saturation point")
	}
	golden(t, "curve", []Curve{c})
}

// TestKernelDifferentialCurve extends the kernel-equivalence gate over the
// curve runner: the same curve must serialise to byte-identical JSON and
// CSV artifacts under the strict, skip and event kernels.
func TestKernelDifferentialCurve(t *testing.T) {
	marshal := func(kernel platform.KernelMode) ([]byte, []byte) {
		t.Helper()
		curves, err := Runner{Kernel: kernel}.RunCurves([]CurveSpec{goldenCurveSpec()})
		if err != nil {
			t.Fatal(err)
		}
		var js, cs bytes.Buffer
		if err := WriteCurvesJSON(&js, curves); err != nil {
			t.Fatal(err)
		}
		if err := WriteCurvesCSV(&cs, curves); err != nil {
			t.Fatal(err)
		}
		return js.Bytes(), cs.Bytes()
	}
	wantJS, wantCS := marshal(platform.KernelStrict)
	for _, kernel := range diffKernels()[1:] {
		js, cs := marshal(kernel)
		if !bytes.Equal(wantJS, js) {
			t.Fatalf("curve JSON differs between strict and %v kernels", kernel)
		}
		if !bytes.Equal(wantCS, cs) {
			t.Fatalf("curve CSV differs between strict and %v kernels", kernel)
		}
	}
}

// TestCurveWorkerDeterminism pins the sweep package's core contract for
// the new runner: curve artifacts are byte-identical for any worker count.
func TestCurveWorkerDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		curves, err := Runner{Workers: workers}.RunCurves([]CurveSpec{goldenCurveSpec()})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCurvesJSON(&buf, curves); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("curve artifacts depend on worker count")
	}
}

func TestCurveSpecValidate(t *testing.T) {
	ok := goldenCurveSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CurveSpec)
	}{
		{"missing name", func(cs *CurveSpec) { cs.Name = "" }},
		{"tg workload", func(cs *CurveSpec) {
			cs.Workload = Workload{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8}
		}},
		{"bad gap", func(cs *CurveSpec) { cs.Gaps = []float64{4, 0} }},
		{"bad fabric", func(cs *CurveSpec) { cs.Fabric.Interconnect = "warp" }},
		{"no epoch length", func(cs *CurveSpec) { cs.Measure = Measure{Epochs: 1} }},
		{"bad measure", func(cs *CurveSpec) { cs.Measure.CITarget = 2 }},
	}
	for _, c := range cases {
		cs := goldenCurveSpec()
		c.mutate(&cs)
		if err := cs.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestCurvePanicKeepsPointContext is the PR-7 regression fix: a worker
// panic inside a curve level used to surface as a bare Err string,
// dropping the recovered panic's structured context. The violation must
// now ride the CurvePoint, its message naming the curve and gap.
func TestCurvePanicKeepsPointContext(t *testing.T) {
	spec := goldenCurveSpec()
	spec.Gaps = []float64{24, 6}
	r := Runner{
		Faults: func(Point) *guard.FaultPlan { panic("injected curve panic") },
	}
	c, err := r.RunCurve(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points {
		if p.Err == "" || !strings.Contains(p.Err, "injected curve panic") {
			t.Fatalf("gap %g: panic not recorded: %q", p.MeanGap, p.Err)
		}
		if p.Violation == nil || p.Violation.Kind != guard.KindPanic {
			t.Fatalf("gap %g: panic lost its structured violation: %+v", p.MeanGap, p.Violation)
		}
		want := fmt.Sprintf("curve %s gap %g:", spec.Name, p.MeanGap)
		if !strings.Contains(p.Violation.Msg, want) {
			t.Fatalf("gap %g: violation message %q lacks the level context %q",
				p.MeanGap, p.Violation.Msg, want)
		}
		if p.Violation.Stack == "" {
			t.Fatalf("gap %g: recovered panic lost its stack", p.MeanGap)
		}
	}
	// The stack is diagnostic-only: the artifact must exclude it (it
	// embeds host-dependent addresses) while keeping the violation.
	var buf bytes.Buffer
	if err := WriteCurvesJSON(&buf, []Curve{c}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"violation"`)) {
		t.Fatal("curve artifact lacks the violation")
	}
	if bytes.Contains(buf.Bytes(), []byte("goroutine")) {
		t.Fatal("curve artifact leaks the panic stack")
	}
}

// TestCurveRetryRecovers: a transient first-attempt failure on a curve
// level retries under the spec's policy and the final artifact is
// byte-identical to a fault-free run.
func TestCurveRetryRecovers(t *testing.T) {
	spec := goldenCurveSpec()
	spec.Gaps = []float64{24, 6}
	clean, err := Runner{}.RunCurve(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Retry = &RetryPolicy{MaxAttempts: 2}
	r := Runner{
		Faults: func(Point) *guard.FaultPlan { panic("transient curve panic") },
	}
	retried, err := r.RunCurve(spec)
	if err != nil {
		t.Fatal(err)
	}
	render := func(c Curve) []byte {
		c.Name = "normalized" // Retry lives in the spec, not the curve
		var buf bytes.Buffer
		if err := WriteCurvesJSON(&buf, []Curve{c}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(clean), render(retried); !bytes.Equal(a, b) {
		t.Fatalf("retried curve diverged from the clean run:\n%s\nvs\n%s", b, a)
	}
}

// TestDetectSaturation exercises the knee detector on synthetic curves.
func TestDetectSaturation(t *testing.T) {
	mk := func(offered, tpk, lat []float64) []CurvePoint {
		pts := make([]CurvePoint, len(offered))
		for i := range pts {
			pts[i] = CurvePoint{OfferedTPK: offered[i], ThroughputTPK: tpk[i], LatencyMean: lat[i]}
		}
		return pts
	}

	// Throughput plateau: the marginal criterion fires at the flat tail.
	pts := mk(
		[]float64{100, 200, 400, 800, 1600},
		[]float64{95, 180, 300, 330, 333},
		[]float64{5, 5.5, 7, 9, 10},
	)
	sat := detectSaturation(pts)
	if sat == nil || sat.Index != 3 {
		t.Fatalf("plateau knee: %+v", sat)
	}
	if sat.ThroughputTPK != 333 {
		t.Fatalf("saturation throughput = %g, want the plateau maximum", sat.ThroughputTPK)
	}
	if pts[2].Saturated || !pts[3].Saturated || !pts[4].Saturated {
		t.Fatalf("saturated flags: %+v", pts)
	}

	// Latency blow-up fires even while throughput still creeps upward.
	pts = mk(
		[]float64{100, 200, 400},
		[]float64{95, 180, 340},
		[]float64{5, 8, 20},
	)
	if sat = detectSaturation(pts); sat == nil || sat.Index != 2 {
		t.Fatalf("latency knee: %+v", sat)
	}

	// An unsaturated curve reports nothing.
	pts = mk(
		[]float64{100, 200, 400},
		[]float64{95, 185, 360},
		[]float64{5, 5.2, 5.5},
	)
	if sat = detectSaturation(pts); sat != nil {
		t.Fatalf("unsaturated curve flagged: %+v", sat)
	}

	// A failed lightest level degrades the baseline to the next error-free
	// level instead of discarding the whole curve's detection.
	pts = mk(
		[]float64{100, 200, 400, 800},
		[]float64{0, 180, 340, 350},
		[]float64{0, 8, 26, 30},
	)
	pts[0].Err = "panic: boom"
	if sat = detectSaturation(pts); sat == nil || sat.Index != 2 {
		t.Fatalf("leading-error baseline: %+v", sat)
	}
}
