package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"noctg/internal/exp"
	"noctg/internal/platform"
)

// diffKernels is the kernel matrix every differential gate runs: the strict
// reference, the whole-cycle skip kernel, and the event-driven active-set
// kernel.
func diffKernels() []platform.KernelMode {
	return []platform.KernelMode{platform.KernelStrict, platform.KernelSkip, platform.KernelEvent}
}

// assertKernelDifferential runs points under every kernel and asserts the
// Results — and the JSON/CSV artifacts serialised from them — are
// byte-identical to the strict reference.
func assertKernelDifferential(t *testing.T, points []Point) {
	t.Helper()
	strict, err := Runner{Kernel: platform.KernelStrict}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strict {
		if strict[i].Err != "" {
			t.Fatalf("strict point %d (%s @ %s): %s", i, strict[i].Workload, strict[i].Fabric, strict[i].Err)
		}
	}
	var js, cs bytes.Buffer
	if err := WriteJSON(&js, strict); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cs, strict); err != nil {
		t.Fatal(err)
	}

	for _, kernel := range diffKernels()[1:] {
		got, err := Runner{Kernel: kernel}.Run(points)
		if err != nil {
			t.Fatal(err)
		}
		if len(strict) != len(got) {
			t.Fatalf("strict produced %d results, %v %d", len(strict), kernel, len(got))
		}
		for i := range strict {
			if !reflect.DeepEqual(strict[i], got[i]) {
				t.Fatalf("point %d (%s @ %s) diverged:\nstrict: %+v\n%v: %+v",
					i, strict[i].Workload, strict[i].Fabric, strict[i], kernel, got[i])
			}
		}
		var jk, ck bytes.Buffer
		if err := WriteJSON(&jk, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js.Bytes(), jk.Bytes()) {
			t.Fatalf("JSON artifacts differ between strict and %v kernels", kernel)
		}
		if err := WriteCSV(&ck, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
			t.Fatalf("CSV artifacts differ between strict and %v kernels", kernel)
		}
	}
}

// TestKernelDifferentialGrid is the tentpole equivalence gate for the grid
// sweep: every DefaultGrid point must produce an identical Result under the
// strict, skip and event kernels, down to byte-identical JSON and CSV
// artifacts.
func TestKernelDifferentialGrid(t *testing.T) {
	assertKernelDifferential(t, DefaultGrid().Expand())
}

// TestKernelDifferentialScenarios extends the equivalence gate over the
// scenario space: every spatial pattern × fabric topology point of
// ScenarioGrid must produce byte-identical JSON and CSV artifacts under
// the strict, skip and event kernels.
func TestKernelDifferentialScenarios(t *testing.T) {
	assertKernelDifferential(t, ScenarioGrid().Expand())
}

// TestKernelDifferentialPaper runs every paper experiment family under both
// kernels and asserts the simulated-state results (makespans, poll counts,
// program equality — everything except host wall-clock) are identical.
func TestKernelDifferentialPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper differential is a long test")
	}
	sizes := tinySizes()
	sel := AllPaper()

	run := func(kernel platform.KernelMode) *PaperResults {
		t.Helper()
		opt := exp.DefaultOptions()
		opt.Platform.Kernel = kernel
		res, err := RunPaperSelect(sizes, opt, 0, sel)
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		return res
	}
	strict := run(platform.KernelStrict)
	for _, kernel := range diffKernels()[1:] {
		assertPaperEqual(t, strict, run(kernel))
	}
}

// assertPaperEqual compares every simulated-state field of two full paper
// evaluations.
func assertPaperEqual(t *testing.T, strict, skip *PaperResults) {
	t.Helper()
	if len(strict.Table2) != len(skip.Table2) {
		t.Fatalf("table2 rows: strict %d, skip %d", len(strict.Table2), len(skip.Table2))
	}
	for i := range strict.Table2 {
		s, k := strict.Table2[i], skip.Table2[i]
		if s.Bench != k.Bench || s.Cores != k.Cores ||
			s.CyclesARM != k.CyclesARM || s.CyclesTG != k.CyclesTG ||
			s.ErrorPct != k.ErrorPct || s.TraceBytes != k.TraceBytes {
			t.Fatalf("table2 row %d diverged:\nstrict: %+v\nskip:   %+v", i, s, k)
		}
	}
	if !reflect.DeepEqual(strict.CrossChecks, skip.CrossChecks) {
		t.Fatalf("cross-checks diverged:\nstrict: %+v\nskip:   %+v", strict.CrossChecks, skip.CrossChecks)
	}
	if strict.Overhead.TraceBytes != skip.Overhead.TraceBytes ||
		strict.Overhead.Events != skip.Overhead.Events {
		t.Fatalf("overhead diverged:\nstrict: %+v\nskip:   %+v", strict.Overhead, skip.Overhead)
	}
	if !reflect.DeepEqual(strict.Fidelity, skip.Fidelity) {
		t.Fatalf("fidelity ablation diverged:\nstrict: %+v\nskip:   %+v", strict.Fidelity, skip.Fidelity)
	}
	if !reflect.DeepEqual(strict.Arbitration, skip.Arbitration) {
		t.Fatalf("arbitration ablation diverged:\nstrict: %+v\nskip:   %+v", strict.Arbitration, skip.Arbitration)
	}
	if !reflect.DeepEqual(strict.Fig2a, skip.Fig2a) {
		t.Fatalf("fig2a diverged:\nstrict: %+v\nskip:   %+v", strict.Fig2a, skip.Fig2a)
	}
	if !reflect.DeepEqual(strict.Fig2b, skip.Fig2b) {
		t.Fatalf("fig2b diverged:\nstrict: %+v\nskip:   %+v", strict.Fig2b, skip.Fig2b)
	}
}

// TestKernelDefaultIsEvent pins the TG-replay default: a sweep Runner with
// the zero-value kernel mode must behave exactly like an explicit
// event-kernel selection (the active-set kernel is the replay default).
func TestKernelDefaultIsEvent(t *testing.T) {
	points := DefaultGrid().Expand()[:2]
	auto, err := Runner{}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	event, err := Runner{Kernel: platform.KernelEvent}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, event) {
		t.Fatal("zero-value Runner kernel must resolve to event")
	}
}
