package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"noctg/internal/exp"
	"noctg/internal/platform"
)

// TestKernelDifferentialGrid is the tentpole equivalence gate for the grid
// sweep: every DefaultGrid point must produce an identical Result under the
// strict and the idle-skipping kernel, down to byte-identical JSON and CSV
// artifacts.
func TestKernelDifferentialGrid(t *testing.T) {
	points := DefaultGrid().Expand()

	strict, err := Runner{Kernel: platform.KernelStrict}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := Runner{Kernel: platform.KernelSkip}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != len(skip) {
		t.Fatalf("strict produced %d results, skip %d", len(strict), len(skip))
	}
	for i := range strict {
		if strict[i].Err != "" {
			t.Fatalf("strict point %d (%s @ %s): %s", i, strict[i].Workload, strict[i].Fabric, strict[i].Err)
		}
		if !reflect.DeepEqual(strict[i], skip[i]) {
			t.Fatalf("point %d (%s @ %s) diverged:\nstrict: %+v\nskip:   %+v",
				i, strict[i].Workload, strict[i].Fabric, strict[i], skip[i])
		}
	}

	var js, jk, cs, ck bytes.Buffer
	if err := WriteJSON(&js, strict); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jk, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jk.Bytes()) {
		t.Fatal("JSON artifacts differ between strict and skip kernels")
	}
	if err := WriteCSV(&cs, strict); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&ck, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
		t.Fatal("CSV artifacts differ between strict and skip kernels")
	}
}

// TestKernelDifferentialScenarios extends the equivalence gate over the
// scenario space: every spatial pattern × fabric topology point of
// ScenarioGrid must produce byte-identical JSON and CSV artifacts under
// the strict and the idle-skipping kernel.
func TestKernelDifferentialScenarios(t *testing.T) {
	points := ScenarioGrid().Expand()

	strict, err := Runner{Kernel: platform.KernelStrict}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := Runner{Kernel: platform.KernelSkip}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range strict {
		if strict[i].Err != "" {
			t.Fatalf("strict point %d (%s @ %s): %s", i, strict[i].Workload, strict[i].Fabric, strict[i].Err)
		}
		if !reflect.DeepEqual(strict[i], skip[i]) {
			t.Fatalf("point %d (%s @ %s) diverged:\nstrict: %+v\nskip:   %+v",
				i, strict[i].Workload, strict[i].Fabric, strict[i], skip[i])
		}
	}

	var js, jk, cs, ck bytes.Buffer
	if err := WriteJSON(&js, strict); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jk, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js.Bytes(), jk.Bytes()) {
		t.Fatal("scenario JSON artifacts differ between strict and skip kernels")
	}
	if err := WriteCSV(&cs, strict); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&ck, skip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
		t.Fatal("scenario CSV artifacts differ between strict and skip kernels")
	}
}

// TestKernelDifferentialPaper runs every paper experiment family under both
// kernels and asserts the simulated-state results (makespans, poll counts,
// program equality — everything except host wall-clock) are identical.
func TestKernelDifferentialPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("paper differential is a long test")
	}
	sizes := tinySizes()
	sel := AllPaper()

	run := func(kernel platform.KernelMode) *PaperResults {
		t.Helper()
		opt := exp.DefaultOptions()
		opt.Platform.Kernel = kernel
		res, err := RunPaperSelect(sizes, opt, 0, sel)
		if err != nil {
			t.Fatalf("kernel %v: %v", kernel, err)
		}
		return res
	}
	strict := run(platform.KernelStrict)
	skip := run(platform.KernelSkip)

	if len(strict.Table2) != len(skip.Table2) {
		t.Fatalf("table2 rows: strict %d, skip %d", len(strict.Table2), len(skip.Table2))
	}
	for i := range strict.Table2 {
		s, k := strict.Table2[i], skip.Table2[i]
		if s.Bench != k.Bench || s.Cores != k.Cores ||
			s.CyclesARM != k.CyclesARM || s.CyclesTG != k.CyclesTG ||
			s.ErrorPct != k.ErrorPct || s.TraceBytes != k.TraceBytes {
			t.Fatalf("table2 row %d diverged:\nstrict: %+v\nskip:   %+v", i, s, k)
		}
	}
	if !reflect.DeepEqual(strict.CrossChecks, skip.CrossChecks) {
		t.Fatalf("cross-checks diverged:\nstrict: %+v\nskip:   %+v", strict.CrossChecks, skip.CrossChecks)
	}
	if strict.Overhead.TraceBytes != skip.Overhead.TraceBytes ||
		strict.Overhead.Events != skip.Overhead.Events {
		t.Fatalf("overhead diverged:\nstrict: %+v\nskip:   %+v", strict.Overhead, skip.Overhead)
	}
	if !reflect.DeepEqual(strict.Fidelity, skip.Fidelity) {
		t.Fatalf("fidelity ablation diverged:\nstrict: %+v\nskip:   %+v", strict.Fidelity, skip.Fidelity)
	}
	if !reflect.DeepEqual(strict.Arbitration, skip.Arbitration) {
		t.Fatalf("arbitration ablation diverged:\nstrict: %+v\nskip:   %+v", strict.Arbitration, skip.Arbitration)
	}
	if !reflect.DeepEqual(strict.Fig2a, skip.Fig2a) {
		t.Fatalf("fig2a diverged:\nstrict: %+v\nskip:   %+v", strict.Fig2a, skip.Fig2a)
	}
	if !reflect.DeepEqual(strict.Fig2b, skip.Fig2b) {
		t.Fatalf("fig2b diverged:\nstrict: %+v\nskip:   %+v", strict.Fig2b, skip.Fig2b)
	}
}

// TestKernelDefaultIsSkip pins the TG-replay default: a sweep Runner with
// the zero-value kernel mode must behave exactly like an explicit skip
// selection (the paper-replay default the ISSUE requires).
func TestKernelDefaultIsSkip(t *testing.T) {
	points := DefaultGrid().Expand()[:2]
	auto, err := Runner{}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := Runner{Kernel: platform.KernelSkip}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, skip) {
		t.Fatal("zero-value Runner kernel must resolve to skip")
	}
}
