package sweep

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"noctg/internal/exp"
	"noctg/internal/journal"
)

// The golden-file regression harness: every deterministic experiment
// artifact — the paper experiments (Table 2, the cross-interconnect check,
// the Figure 2 pair) and the spatial-pattern scenario grid — is snapshotted
// under testdata/golden/ and compared byte-for-byte on every test run, so
// any behavioural drift in the simulation models fails CI with a diffable
// artifact. Regenerate after an intentional change with
//
//	go test ./internal/sweep -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// golden marshals v and compares it with testdata/golden/<name>.json,
// or rewrites the file under -update.
func golden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden", name+".json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		// Atomic like every other artifact writer: an interrupted -update
		// must not leave a torn golden masquerading as a real baseline.
		if err := journal.AtomicWrite(path, got); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file.\nIf the change is intentional, regenerate with:\n  go test ./internal/sweep -run %s -update\ngot:\n%s\nwant:\n%s",
			name, t.Name(), clip(got), clip(want))
	}
}

// clip bounds a diff dump so a drifted 26-point result set stays readable.
func clip(b []byte) []byte {
	const max = 4096
	if len(b) <= max {
		return b
	}
	return append(append([]byte{}, b[:max]...), []byte("\n... [clipped]")...)
}

// TestGoldenScenarioGrid locks the full spatial-pattern × topology scenario
// sweep: every pattern on AMBA, mesh and torus, byte-identical to the
// committed snapshot (and, via TestKernelDifferentialScenarios, identical
// under all three kernels).
func TestGoldenScenarioGrid(t *testing.T) {
	results, err := Runner{}.Run(ScenarioGrid().Expand())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d (%s @ %s): %s", r.ID, r.Workload, r.Fabric, r.Err)
		}
	}
	golden(t, "scenarios", results)
}

// goldenRow is the deterministic projection of a Table 2 row: simulated
// cycles, accuracy and trace size, but no host wall-clock fields.
type goldenRow struct {
	Bench      string  `json:"bench"`
	Cores      int     `json:"cores"`
	CyclesARM  uint64  `json:"cycles_arm"`
	CyclesTG   uint64  `json:"cycles_tg"`
	ErrorPct   float64 `json:"error_pct"`
	TraceBytes int     `json:"trace_bytes"`
}

// TestGoldenTable2 locks the Table 2 accuracy numbers for the tiny
// benchmark sizes.
func TestGoldenTable2(t *testing.T) {
	res, err := RunPaperSelect(tinySizes(), exp.DefaultOptions(), 0, PaperSelect{Table2: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]goldenRow, len(res.Table2))
	for i, r := range res.Table2 {
		rows[i] = goldenRow{
			Bench:      r.Bench,
			Cores:      r.Cores,
			CyclesARM:  r.CyclesARM,
			CyclesTG:   r.CyclesTG,
			ErrorPct:   r.ErrorPct,
			TraceBytes: r.TraceBytes,
		}
	}
	golden(t, "table2", rows)
}

// TestGoldenCrossCheck locks the cross-interconnect .tgp equality
// experiment (every field of the result is simulation-derived).
func TestGoldenCrossCheck(t *testing.T) {
	res, err := RunPaperSelect(tinySizes(), exp.DefaultOptions(), 0, PaperSelect{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "crosscheck", res.CrossChecks)
}

// TestGoldenFig2 locks both Figure 2 experiments.
func TestGoldenFig2(t *testing.T) {
	res, err := RunPaperSelect(tinySizes(), exp.DefaultOptions(), 0, PaperSelect{Fig2: true})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig2", struct {
		Fig2a *exp.Fig2aResult `json:"fig2a"`
		Fig2b *exp.Fig2bResult `json:"fig2b"`
	}{res.Fig2a, res.Fig2b})
}
