package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/prog"
	"noctg/internal/stochastic"
)

// Workload kinds.
const (
	// KindTG traces a paper benchmark once on the reference platform,
	// translates it, and replays the reactive TG programs on the point's
	// fabric (the paper's design-space-exploration flow).
	KindTG = "tg"
	// KindStochastic drives the fabric with seeded statistical masters
	// (the Lahiri-style baseline of Section 2).
	KindStochastic = "stochastic"
)

// Workload names one traffic source swept over the grid.
type Workload struct {
	// Kind is KindTG or KindStochastic.
	Kind string `json:"kind"`
	// Bench names the paper benchmark for KindTG: spmatrix, cacheloop,
	// mpmatrix, des or pipeline.
	Bench string `json:"bench,omitempty"`
	// Cores is the number of master devices.
	Cores int `json:"cores"`
	// Size is the benchmark size knob (matrix N, loop iterations, DES
	// blocks, pipeline items).
	Size int `json:"size,omitempty"`
	// Dist selects the stochastic distribution for KindStochastic:
	// uniform, gaussian, poisson or bursty.
	Dist string `json:"dist,omitempty"`
	// MeanGap is the stochastic mean inter-transaction gap in cycles
	// (default 10).
	MeanGap float64 `json:"mean_gap,omitempty"`
	// Count is the per-master stochastic transaction count (default 1000).
	Count int `json:"count,omitempty"`
	// Pattern selects a spatial destination pattern for KindStochastic:
	// uniform, transpose, bitcomp, bitrev, hotspot or neighbor. Empty
	// keeps the legacy shared-memory target. Master i is logical node i
	// of the PatternW×PatternH grid (PatternW·PatternH == Cores) and
	// node d's traffic lands in core d's private memory.
	Pattern string `json:"pattern,omitempty"`
	// PatternW, PatternH are the logical grid dimensions of the pattern.
	PatternW int `json:"pattern_w,omitempty"`
	PatternH int `json:"pattern_h,omitempty"`
	// Hotspot gives the per-node traffic fractions of the hotspot
	// pattern (index = logical node, sum <= 1).
	Hotspot []float64 `json:"hotspot,omitempty"`
	// AllowSelf permits a randomized pattern to target its own node.
	AllowSelf bool `json:"allow_self,omitempty"`
	// Arrival selects a bursty or self-similar arrival process for
	// KindStochastic, replacing Dist/MeanGap (the offered load lives in
	// the process parameters).
	Arrival *Arrival `json:"arrival,omitempty"`
	// Classes are relative per-message-class injection weights for
	// KindStochastic (see stochastic.Config.Classes).
	Classes []float64 `json:"classes,omitempty"`
}

// Label is a compact human-readable workload name, stable across runs.
func (w Workload) Label() string {
	if w.Kind == KindStochastic {
		temporal := w.Dist
		if w.Arrival != nil {
			temporal = w.Arrival.label()
		}
		if len(w.Classes) > 0 {
			temporal += fmt.Sprintf("-prio%d", len(w.Classes))
		}
		if w.Pattern != "" {
			return fmt.Sprintf("stochastic-%s-%s%dx%d/%dP/%d",
				temporal, w.Pattern, w.PatternW, w.PatternH, w.Cores, w.Count)
		}
		return fmt.Sprintf("stochastic-%s/%dP/%d", temporal, w.Cores, w.Count)
	}
	return fmt.Sprintf("%s/%dP/%d", w.Bench, w.Cores, w.Size)
}

// spatial builds the stochastic Spatial configuration of a pattern
// workload: the logical grid is the core set, and node d's traffic lands
// in core d's private memory through the platform address map.
func (w Workload) spatial() (*stochastic.Spatial, error) {
	if w.Pattern == "" {
		return nil, nil
	}
	pat, err := stochastic.ParsePattern(w.Pattern)
	if err != nil {
		return nil, err
	}
	if w.PatternW < 1 || w.PatternH < 1 {
		return nil, fmt.Errorf("sweep: pattern grid %dx%d must be at least 1x1", w.PatternW, w.PatternH)
	}
	// Bound the dimensions before the product check and the destination
	// table: a hostile grid file must fail fast, not allocate.
	if w.PatternW > stochastic.MaxGridDim || w.PatternH > stochastic.MaxGridDim {
		return nil, fmt.Errorf("sweep: pattern grid %dx%d exceeds %dx%d",
			w.PatternW, w.PatternH, stochastic.MaxGridDim, stochastic.MaxGridDim)
	}
	if w.PatternW > w.Cores || w.PatternH > w.Cores || w.PatternW*w.PatternH != w.Cores {
		return nil, fmt.Errorf("sweep: pattern grid %dx%d does not tile %d cores",
			w.PatternW, w.PatternH, w.Cores)
	}
	dests := make([]ocp.AddrRange, w.Cores)
	for d := range dests {
		dests[d] = layout.PrivRange(d)
	}
	s := &stochastic.Spatial{
		Pattern:        pat,
		W:              w.PatternW,
		H:              w.PatternH,
		Dests:          dests,
		HotspotWeights: w.Hotspot,
		AllowSelf:      w.AllowSelf,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// spec builds the benchmark spec for a TG workload. The prog constructors
// panic on out-of-range sizes; convert that into a validation error so a
// bad grid never takes the process down.
func (w Workload) spec() (s *prog.Spec, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("sweep: invalid workload %s: %v", w.Label(), r)
		}
	}()
	switch w.Bench {
	case "spmatrix":
		return prog.SPMatrix(w.Size), nil
	case "cacheloop":
		return prog.Cacheloop(w.Cores, w.Size), nil
	case "mpmatrix":
		return prog.MPMatrix(w.Cores, w.Size), nil
	case "des":
		return prog.DES(w.Cores, w.Size), nil
	case "pipeline":
		return prog.Pipeline(w.Cores, w.Size), nil
	}
	return nil, fmt.Errorf("sweep: unknown benchmark %q", w.Bench)
}

// dist maps the distribution name onto the stochastic package's enum.
func (w Workload) dist() (stochastic.Dist, error) {
	for d := stochastic.Uniform; d <= stochastic.Bursty; d++ {
		if d.String() == w.Dist {
			return d, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown distribution %q", w.Dist)
}

func (w Workload) validate() error {
	switch w.Kind {
	case KindTG:
		if w.Arrival != nil || len(w.Classes) != 0 {
			return fmt.Errorf("sweep: arrival/classes are stochastic workload knobs")
		}
		if w.Size <= 0 {
			return fmt.Errorf("sweep: workload %s needs a positive size", w.Bench)
		}
		spec, err := w.spec()
		if err != nil {
			return err
		}
		if w.Cores > 0 && spec.Cores != w.Cores {
			return fmt.Errorf("sweep: %s built %d cores, workload asked for %d",
				w.Bench, spec.Cores, w.Cores)
		}
	case KindStochastic:
		if w.Arrival != nil {
			if w.Dist != "" || w.MeanGap != 0 {
				return fmt.Errorf("sweep: arrival process and dist/mean_gap are mutually exclusive")
			}
			if err := w.Arrival.validate(); err != nil {
				return err
			}
		} else if _, err := w.dist(); err != nil {
			return err
		}
		if err := stochastic.ValidateClasses(w.Classes); err != nil {
			return err
		}
		if w.Cores <= 0 {
			return fmt.Errorf("sweep: stochastic workload needs cores > 0")
		}
		if _, err := w.spatial(); err != nil {
			return err
		}
		if w.Pattern == "" && (w.PatternW != 0 || w.PatternH != 0 || len(w.Hotspot) != 0) {
			return fmt.Errorf("sweep: pattern grid/weights set without a pattern")
		}
	default:
		return fmt.Errorf("sweep: unknown workload kind %q", w.Kind)
	}
	return nil
}

// Interconnect names.
const (
	FabricAMBA   = "amba"
	FabricXPipes = "xpipes"
)

// Fabric names one interconnect configuration swept over the grid.
type Fabric struct {
	// Interconnect is FabricAMBA or FabricXPipes.
	Interconnect string `json:"interconnect"`
	// Topology selects the ×pipes link structure: "mesh" (default) or
	// "torus" (wrap-around rings, shortest-path routing).
	Topology string `json:"topology,omitempty"`
	// MeshWidth / MeshHeight give the ×pipes grid dimensions; both zero
	// auto-sizes the grid to the core count.
	MeshWidth  int `json:"mesh_width,omitempty"`
	MeshHeight int `json:"mesh_height,omitempty"`
	// BufferFlits is the per-input, per-VC router FIFO depth (default 4).
	BufferFlits int `json:"buffer_flits,omitempty"`
	// MemWaitStates is the intrinsic slave access time (default 1).
	MemWaitStates uint64 `json:"mem_wait_states,omitempty"`
}

// Label is a compact human-readable fabric name, stable across runs.
func (f Fabric) Label() string {
	s := f.Interconnect
	if f.Interconnect == FabricXPipes {
		if f.Topology != "" && f.Topology != "mesh" {
			s += "-" + f.Topology
		}
		if f.MeshWidth > 0 || f.MeshHeight > 0 {
			s += fmt.Sprintf("-%dx%d", f.MeshWidth, f.MeshHeight)
		}
		if f.BufferFlits > 0 {
			s += fmt.Sprintf("-buf%d", f.BufferFlits)
		}
	}
	if f.MemWaitStates > 1 {
		s += fmt.Sprintf("-ws%d", f.MemWaitStates)
	}
	return s
}

func (f Fabric) interconnect() (platform.Interconnect, error) {
	switch f.Interconnect {
	case FabricAMBA:
		if f.Topology != "" {
			return 0, fmt.Errorf("sweep: topology %q is a ×pipes knob, not an AMBA one", f.Topology)
		}
		return platform.AMBA, nil
	case FabricXPipes:
		if _, err := noc.ParseTopology(f.Topology); err != nil {
			return 0, err
		}
		return platform.XPipes, nil
	}
	return 0, fmt.Errorf("sweep: unknown interconnect %q", f.Interconnect)
}

// topology resolves the ×pipes topology (mesh unless set).
func (f Fabric) topology() noc.Topology {
	t, _ := noc.ParseTopology(f.Topology)
	return t
}

// Grid is the cross product of workloads × fabrics × clock periods × seeds.
type Grid struct {
	Workloads []Workload `json:"workloads"`
	Fabrics   []Fabric   `json:"fabrics"`
	// ClockPeriodsNS lists the clock periods to sweep (default [5], the
	// paper's 200 MHz).
	ClockPeriodsNS []uint64 `json:"clock_periods_ns,omitempty"`
	// Seeds lists the stochastic seeds to sweep (default [1]). TG points
	// are deterministic, so they run once per seed only if several seeds
	// are listed — keep one seed for TG-only grids.
	Seeds []int64 `json:"seeds,omitempty"`
	// Measure switches every point to the phased warmup/measure/drain
	// methodology (nil keeps the legacy whole-run accounting).
	Measure *Measure `json:"measure,omitempty"`
	// Shards > 0 runs every ×pipes point sharded across that many engines
	// (see platform.Config.Shards); AMBA points ignore it. Sharded results
	// are identical for every shard count >= 1 but form their own
	// determinism class versus the legacy single-engine run (0).
	Shards int `json:"shards,omitempty"`
	// Retry is the per-point retry/deadline policy applied to every point
	// (see RetryPolicy). Execution-only, like Shards.
	Retry *RetryPolicy `json:"retry,omitempty"`
	// Analytic enables the closed-form pre-pass on every stochastic
	// point (see Point.Analytic). TG points always simulate.
	Analytic bool `json:"analytic,omitempty"`
}

// Point is one fully-specified grid configuration.
type Point struct {
	ID            int      `json:"id"`
	Workload      Workload `json:"workload"`
	Fabric        Fabric   `json:"fabric"`
	ClockPeriodNS uint64   `json:"clock_period_ns"`
	Seed          int64    `json:"seed"`
	// Measure enables phased measurement for this point (nil = legacy
	// whole-run accounting).
	Measure *Measure `json:"measure,omitempty"`
	// Shards is the point's parallel-execution setting (see Grid.Shards).
	// Execution-only: results never record it, and artifacts are
	// byte-identical across shard counts >= 1.
	Shards int `json:"shards,omitempty"`
	// Retry is the point's retry/deadline policy (see Grid.Retry).
	// Execution-only: excluded from the journal point key, so a resumed
	// campaign may change it.
	Retry *RetryPolicy `json:"retry,omitempty"`
	// Analytic enables the closed-form pre-pass for this point: when the
	// queueing model brackets the operating region confidently (deep in
	// the linear region or deep past saturation), the point is recorded
	// as an estimated result instead of being simulated — never silently
	// dropped. Result-determining, so it is part of the journal key.
	Analytic bool `json:"analytic,omitempty"`
}

// Label identifies the point in reports.
func (p Point) Label() string {
	return fmt.Sprintf("%s@%s/clk%d/seed%d",
		p.Workload.Label(), p.Fabric.Label(), p.ClockPeriodNS, p.Seed)
}

// Expand enumerates the grid points in a fixed nesting order
// (workload → fabric → clock → seed); IDs are assigned in that order.
func (g Grid) Expand() []Point {
	clocks := g.ClockPeriodsNS
	if len(clocks) == 0 {
		clocks = []uint64{5}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var pts []Point
	for _, w := range g.Workloads {
		for _, f := range g.Fabrics {
			for _, c := range clocks {
				for _, s := range seeds {
					pts = append(pts, Point{
						ID: len(pts), Workload: w, Fabric: f,
						ClockPeriodNS: c, Seed: s, Measure: g.Measure,
						Shards: g.Shards, Retry: g.Retry,
						Analytic: g.Analytic && w.Kind == KindStochastic,
					})
				}
			}
		}
	}
	return pts
}

// Validate checks every axis value so a bad grid fails before any engine is
// built, deterministically.
func (g Grid) Validate() error {
	if len(g.Workloads) == 0 {
		return fmt.Errorf("sweep: grid has no workloads")
	}
	if len(g.Fabrics) == 0 {
		return fmt.Errorf("sweep: grid has no fabrics")
	}
	for i, w := range g.Workloads {
		if err := w.validate(); err != nil {
			return fmt.Errorf("workload %d: %w", i, err)
		}
	}
	for i, f := range g.Fabrics {
		if _, err := f.interconnect(); err != nil {
			return fmt.Errorf("fabric %d: %w", i, err)
		}
	}
	for i, c := range g.ClockPeriodsNS {
		if c == 0 {
			return fmt.Errorf("sweep: clock period %d is zero; omit the axis for the 5 ns default", i)
		}
	}
	if g.Measure != nil {
		if err := g.Measure.Validate(); err != nil {
			return err
		}
	}
	if err := ValidateShards(g.Shards); err != nil {
		return err
	}
	return g.Retry.Validate()
}

// MaxShards bounds the shard axis so a hostile grid file cannot demand
// thousands of goroutines per point. The fabric additionally clamps the
// effective count to its mesh height.
const MaxShards = 64

// ValidateShards checks a shards setting (grid, point or runner override).
func ValidateShards(shards int) error {
	if shards < 0 || shards > MaxShards {
		return fmt.Errorf("sweep: shards %d outside [0, %d]", shards, MaxShards)
	}
	return nil
}

// ParseGrid reads a JSON grid description. Unknown fields are rejected so a
// typo in a sweep file fails loudly rather than silently shrinking the grid.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// DefaultGrid is the stock 16-configuration design-space sweep: two
// trace-driven TG workloads and two stochastic baselines, each replayed on
// the AMBA bus (fast and slow slaves) and two ×pipes mesh variants.
func DefaultGrid() Grid {
	return Grid{
		Workloads: []Workload{
			{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8},
			{Kind: KindTG, Bench: "cacheloop", Cores: 2, Size: 500},
			{Kind: KindStochastic, Dist: "uniform", Cores: 2, MeanGap: 8, Count: 400},
			{Kind: KindStochastic, Dist: "bursty", Cores: 2, MeanGap: 8, Count: 400},
		},
		Fabrics: []Fabric{
			{Interconnect: FabricAMBA},
			{Interconnect: FabricAMBA, MemWaitStates: 4},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 2, BufferFlits: 2},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 2, BufferFlits: 8},
		},
	}
}

// ScenarioGrid is the spatial-pattern × topology scenario sweep: every
// spatial pattern on a 2×2 logical core grid (square and power-of-two, so
// transpose and the bit patterns are all legal), crossed with the AMBA
// bus, a ×pipes mesh and a ×pipes torus. It is the grid the scenario
// differential test and the golden-file harness lock down.
func ScenarioGrid() Grid {
	// The workload set iterates the stochastic Pattern enum, so a newly
	// added pattern automatically joins the differential and golden-file
	// corpus (the goldens then need a deliberate -update).
	var ws []Workload
	for pat := stochastic.UniformRandom; pat <= stochastic.NearestNeighbor; pat++ {
		w := Workload{
			Kind:     KindStochastic,
			Dist:     "poisson",
			Cores:    4,
			Pattern:  pat.String(),
			PatternW: 2, PatternH: 2,
			MeanGap: 6,
			Count:   300,
		}
		if pat == stochastic.Hotspot {
			w.Hotspot = []float64{0, 0, 0.6}
		}
		ws = append(ws, w)
	}
	return Grid{
		Workloads: ws,
		Fabrics: []Fabric{
			{Interconnect: FabricAMBA},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 3},
			{Interconnect: FabricXPipes, Topology: "torus", MeshWidth: 4, MeshHeight: 3},
		},
	}
}
