package sweep

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"noctg/internal/guard"
)

// guardTestPoints is a three-seed stochastic grid on a 4x4 mesh; every
// master targets the shared RAM, which lands on node 11 of the 4-core
// floorplan (masters 0..3, privs 15..12, shared 11, semaphores 10).
func guardTestPoints() []Point {
	g := Grid{
		Workloads: []Workload{{Kind: KindStochastic, Dist: "poisson", Cores: 4, MeanGap: 4, Count: 120}},
		Fabrics:   []Fabric{{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 4}},
		Seeds:     []int64{1, 2, 3},
	}
	return g.Expand()
}

const guardSharedNode = 11

// TestGuardGridContinuesPastViolation: a fault plan wedges exactly one
// point; that point is recorded as failed with the typed violation and its
// diagnostic, and every other point completes normally — graceful
// degradation, not a lost sweep.
func TestGuardGridContinuesPastViolation(t *testing.T) {
	cfg := guard.Config{NoRetireHorizon: 2000}
	r := Runner{
		Workers: 2,
		Guard:   &cfg,
		Faults: func(p Point) *guard.FaultPlan {
			if p.Seed != 1 {
				return nil
			}
			return &guard.FaultPlan{SlaveFreezes: []guard.SlaveFreeze{
				{Node: guardSharedNode, From: 0, To: 1 << 62}}}
		},
	}
	results, err := r.Run(guardTestPoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	bad := results[0]
	if bad.Err == "" || bad.Violation == nil {
		t.Fatalf("wedged point not recorded as a violation: %+v", bad)
	}
	if bad.Violation.Kind != guard.KindDeadlock {
		t.Fatalf("wedged point violation kind %s, want %s", bad.Violation.Kind, guard.KindDeadlock)
	}
	if bad.Violation.Diag == nil {
		t.Fatal("wedged point violation carries no diagnostic")
	}
	for _, res := range results[1:] {
		if res.Err != "" || res.Violation != nil {
			t.Fatalf("healthy point %d failed: %q", res.ID, res.Err)
		}
		if res.MakespanCycles == 0 {
			t.Fatalf("healthy point %d did not run", res.ID)
		}
	}
}

// TestGuardViolationArtifactDeterministic: the partial artifact of a
// violating sweep — failed point, diagnostic dump and all — is
// byte-identical across runs and worker counts. A violation is data, not
// nondeterminism (panic stacks are excluded from JSON for exactly this
// reason).
func TestGuardViolationArtifactDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		cfg := guard.Config{NoRetireHorizon: 2000}
		r := Runner{
			Workers: workers,
			Guard:   &cfg,
			Faults: func(p Point) *guard.FaultPlan {
				if p.Seed != 2 {
					return nil
				}
				return &guard.FaultPlan{LinkStalls: []guard.LinkStall{
					{Node: 0, Dir: "e", From: 0, To: 1 << 62}}}
			},
		}
		results, err := r.Run(guardTestPoints())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(1), run(3)
	if !bytes.Equal(a, b) {
		t.Fatalf("violating artifact differs across runs/workers:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"violation"`)) || !bytes.Contains(a, []byte(`"diag"`)) {
		t.Fatalf("artifact lacks the structured violation: %s", a)
	}
}

// TestGuardFaultFreeArtifactsIdentical: arming the full watchdog set on a
// healthy sweep changes nothing — JSON and CSV artifacts are byte-identical
// to the unguarded run's.
func TestGuardFaultFreeArtifactsIdentical(t *testing.T) {
	render := func(gcfg *guard.Config) (string, string) {
		results, err := Runner{Workers: 2, Guard: gcfg}.Run(guardTestPoints())
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteJSON(&j, results); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, results); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	dflt := guard.Default()
	plainJSON, plainCSV := render(nil)
	guardJSON, guardCSV := render(&dflt)
	if plainJSON != guardJSON {
		t.Fatalf("guarded JSON artifact diverged:\n%s\nvs\n%s", guardJSON, plainJSON)
	}
	if plainCSV != guardCSV {
		t.Fatal("guarded CSV artifact diverged")
	}
}

// TestGuardInvalidFaultPlanRecorded: a fault plan the platform rejects
// (missing link) fails that point cleanly and leaves the rest of the grid
// running.
func TestGuardInvalidFaultPlanRecorded(t *testing.T) {
	cfg := guard.Default()
	r := Runner{
		Workers: 2,
		Guard:   &cfg,
		Faults: func(p Point) *guard.FaultPlan {
			if p.Seed != 3 {
				return nil
			}
			// Node 0 sits on the mesh corner: no north link exists.
			return &guard.FaultPlan{LinkStalls: []guard.LinkStall{{Node: 0, Dir: "n", From: 0, To: 100}}}
		},
	}
	results, err := r.Run(guardTestPoints())
	if err != nil {
		t.Fatal(err)
	}
	if results[2].Err == "" || !strings.Contains(results[2].Err, "missing link") {
		t.Fatalf("rejected plan not recorded: %q", results[2].Err)
	}
	if results[0].Err != "" || results[1].Err != "" {
		t.Fatalf("healthy points failed: %q, %q", results[0].Err, results[1].Err)
	}
}

// TestParseGridRejects: malformed or hostile grid files come back as
// errors — bad JSON, typoed fields, over-limit axes — never panics or
// silently shrunk grids.
func TestParseGridRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"not json", "workloads: none"},
		{"unknown field", `{"workloads":[{"kind":"stochastic","dist":"uniform","cores":2}],` +
			`"fabrics":[{"interconnect":"amba"}],"bandwidth":9}`},
		{"no fabrics", `{"workloads":[{"kind":"stochastic","dist":"uniform","cores":2}]}`},
		{"over-limit shards", `{"workloads":[{"kind":"stochastic","dist":"uniform","cores":2}],` +
			`"fabrics":[{"interconnect":"amba"}],"shards":65}`},
		{"negative shards", `{"workloads":[{"kind":"stochastic","dist":"uniform","cores":2}],` +
			`"fabrics":[{"interconnect":"amba"}],"shards":-1}`},
		{"over-limit pattern grid", `{"workloads":[{"kind":"stochastic","dist":"uniform",` +
			`"cores":16777216,"pattern":"uniform","pattern_w":4096,"pattern_h":4096}],` +
			`"fabrics":[{"interconnect":"amba"}]}`},
		{"pattern without grid", `{"workloads":[{"kind":"stochastic","dist":"uniform",` +
			`"cores":4,"pattern_w":2,"pattern_h":2}],"fabrics":[{"interconnect":"amba"}]}`},
		{"zero clock", `{"workloads":[{"kind":"stochastic","dist":"uniform","cores":2}],` +
			`"fabrics":[{"interconnect":"amba"}],"clock_periods_ns":[0]}`},
	}
	for _, tc := range cases {
		if _, err := ParseGrid(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: ParseGrid accepted %q", tc.name, tc.src)
		}
	}
}

// TestRunnerRejectsOverLimitShards: the runner-level override is bounded
// like the grid axis.
func TestRunnerRejectsOverLimitShards(t *testing.T) {
	if _, err := (Runner{Shards: MaxShards + 1}).Run(guardTestPoints()); err == nil {
		t.Fatal("over-limit runner shards accepted")
	}
	pts := guardTestPoints()
	pts[0].Shards = -2
	if _, err := (Runner{}).Run(pts); err == nil {
		t.Fatal("negative point shards accepted")
	}
}

// TestWriteArtifactsUnwritable: filesystem failures writing artifacts are
// errors, not panics, for results and curves alike.
func TestWriteArtifactsUnwritable(t *testing.T) {
	base := filepath.Join(t.TempDir(), "no", "such", "dir", "results")
	if err := WriteArtifacts(base, []Result{{ID: 1}}); err == nil {
		t.Fatal("WriteArtifacts into a missing directory succeeded")
	}
	if err := WriteCurveArtifacts(base, []Curve{{Name: "c"}}); err == nil {
		t.Fatal("WriteCurveArtifacts into a missing directory succeeded")
	}
	// The happy path round-trips.
	ok := filepath.Join(t.TempDir(), "results")
	if err := WriteArtifacts(ok, []Result{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
}
