package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"noctg/internal/journal"
)

// PointKey is the stable identity of one grid point in a journal: the
// sha256 of the point's canonical JSON, excluding the execution-only
// knobs (Shards, Retry). Exclusion is deliberate — those settings never
// change what a point computes (pinned by the shard-determinism matrix),
// so a campaign may be resumed under a different shard count, worker
// count, kernel or retry policy and still match its journal.
func PointKey(p Point) string {
	canon := struct {
		ID            int      `json:"id"`
		Workload      Workload `json:"workload"`
		Fabric        Fabric   `json:"fabric"`
		ClockPeriodNS uint64   `json:"clock_period_ns"`
		Seed          int64    `json:"seed"`
		Measure       *Measure `json:"measure,omitempty"`
		// Analytic is result-determining (an estimated result differs
		// from a measured one), so it keys the journal; omitempty keeps
		// every pre-existing journal's keys byte-identical.
		Analytic bool `json:"analytic,omitempty"`
	}{p.ID, p.Workload, p.Fabric, p.ClockPeriodNS, p.Seed, p.Measure, p.Analytic}
	b, err := json.Marshal(canon)
	if err != nil {
		// Point fields are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("sweep: point key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// CampaignKey identifies the whole point set (order included), so a
// journal can refuse to resume a different campaign.
func CampaignKey(keys []string) string {
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// JournalConfig selects the journal file and whether to resume it.
type JournalConfig struct {
	// Path is the journal file. A fresh run refuses an existing file (it
	// may be resumable); Resume refuses a journal from a different
	// campaign.
	Path string `json:"path"`
	// Resume loads the journal first and skips every completed point,
	// re-running only in-flight or never-started ones.
	Resume bool `json:"resume,omitempty"`
}

// JournalStatus summarises what a journaled run did, for CLI reporting.
type JournalStatus struct {
	// Resumed counts points restored from the journal without re-running.
	Resumed int
	// Ran counts points executed (and journaled) this run.
	Ran int
	// Skipped counts points not started because Interrupted fired; they
	// stay incomplete in the journal for the next resume.
	Skipped int
	// Torn reports that the journal ended in a half-written record — the
	// normal crash signature — which resume truncated away.
	Torn bool
}

// journalOutcome classifies a final result for its done record.
func journalOutcome(res Result) (journal.Outcome, string) {
	if res.Err == "" {
		return journal.OutcomeOK, ""
	}
	kind := ""
	if res.Violation != nil {
		kind = string(res.Violation.Kind)
	}
	if transientFailure(res) {
		// Retries exhausted on a transient classification.
		return journal.OutcomeFailed, kind
	}
	return journal.OutcomeQuarantined, kind
}

// RunJournaled executes the points under a write-ahead journal: one
// fsync'd done record per finished point carrying the full serialised
// Result, so any later resume reproduces final artifacts byte-identical
// to an uninterrupted run without re-simulating completed points — at
// any kill point, worker count, kernel or shard count. Failed points are
// completed points too (their Result carries Err); only in-flight and
// never-started points re-run on resume. ErrDrained is returned when
// Interrupted stopped the run before every point completed.
func (r Runner) RunJournaled(points []Point, jc JournalConfig) ([]Result, JournalStatus, error) {
	var status JournalStatus
	if jc.Path == "" {
		return nil, status, fmt.Errorf("sweep: journaled run needs a journal path")
	}
	if err := r.validatePoints(points); err != nil {
		return nil, status, err
	}
	keys := make([]string, len(points))
	for i, p := range points {
		keys[i] = PointKey(p)
	}
	camp := CampaignKey(keys)

	results := make([]Result, len(points))
	completed := make([]bool, len(points))
	prior := make(map[string]int)

	var w *journal.Writer
	if jc.Resume {
		log, err := journal.Load(jc.Path)
		if err != nil {
			return nil, status, err
		}
		if log.Campaign != nil && (log.Campaign.Key != camp || log.Campaign.Points != len(points)) {
			return nil, status, fmt.Errorf("sweep: journal %s records a different campaign (%d points, key %.12s...); not resuming it",
				jc.Path, log.Campaign.Points, log.Campaign.Key)
		}
		status.Torn = log.TornTail
		for i, k := range keys {
			rec, ok := log.Done[k]
			if !ok {
				continue
			}
			if err := json.Unmarshal(rec.Result, &results[i]); err != nil {
				return nil, status, fmt.Errorf("sweep: journal %s: point %d result: %w", jc.Path, points[i].ID, err)
			}
			completed[i] = true
			status.Resumed++
		}
		for k, n := range log.Attempts {
			prior[k] = n
		}
		if w, err = journal.Resume(jc.Path, log); err != nil {
			return nil, status, err
		}
		if log.Campaign == nil {
			// An empty or fully-torn journal resumes as a fresh campaign.
			if err := w.Campaign(camp, len(points)); err != nil {
				w.Close()
				return nil, status, err
			}
		}
	} else {
		var err error
		if w, err = journal.Create(jc.Path); err != nil {
			return nil, status, err
		}
		if err := w.Campaign(camp, len(points)); err != nil {
			w.Close()
			return nil, status, err
		}
	}

	var todo []int
	for i := range points {
		if !completed[i] {
			todo = append(todo, i)
		}
	}
	cache := &programCache{}
	var mu sync.Mutex
	_, runErr := Map(r.Workers, todo, func(_ int, i int) (struct{}, error) {
		if r.Interrupted != nil && r.Interrupted() {
			mu.Lock()
			status.Skipped++
			mu.Unlock()
			return struct{}{}, nil
		}
		res, attempt, err := r.runPointRetry(cache, points[i], true, prior[keys[i]], func(a int) error {
			return w.Start(keys[i], a)
		})
		if err != nil {
			return struct{}{}, err
		}
		buf, err := json.Marshal(res)
		if err != nil {
			return struct{}{}, fmt.Errorf("sweep: point %d result: %w", points[i].ID, err)
		}
		outcome, kind := journalOutcome(res)
		if err := w.Done(keys[i], attempt, outcome, kind, buf); err != nil {
			return struct{}{}, err
		}
		results[i] = res
		mu.Lock()
		status.Ran++
		mu.Unlock()
		return struct{}{}, nil
	})
	if cerr := w.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return nil, status, runErr
	}
	if status.Skipped > 0 {
		return results, status, ErrDrained
	}
	return results, status, nil
}

// Resume continues an interrupted journaled run: completed points are
// restored from the journal, the rest execute, and the returned results
// are byte-identical to an uninterrupted RunJournaled over the same
// points.
func (r Runner) Resume(points []Point, path string) ([]Result, JournalStatus, error) {
	return r.RunJournaled(points, JournalConfig{Path: path, Resume: true})
}
