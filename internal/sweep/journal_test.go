package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"noctg/internal/guard"
	"noctg/internal/journal"
	"noctg/internal/platform"
)

// journalTestPoints is a cheap three-seed stochastic grid on the AMBA bus
// (no NoC build cost), small enough to re-run many times in the
// truncate-anywhere resume property.
func journalTestPoints() []Point {
	g := Grid{
		Workloads: []Workload{{Kind: KindStochastic, Dist: "uniform", Cores: 2, MeanGap: 6, Count: 40}},
		Fabrics:   []Fabric{{Interconnect: FabricAMBA}},
		Seeds:     []int64{1, 2, 3},
	}
	return g.Expand()
}

// renderResults is the byte-identity yardstick: the exact JSON artifact a
// result set serialises to.
func renderResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournaledMatchesPlain: a fault-free journaled run produces the same
// artifact bytes as an unjournaled one — the journal is pure bookkeeping.
func TestJournaledMatchesPlain(t *testing.T) {
	pts := journalTestPoints()
	plain, err := Runner{Workers: 2}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	journaled, status, err := Runner{Workers: 2}.RunJournaled(pts, JournalConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if status.Ran != len(pts) || status.Resumed != 0 || status.Skipped != 0 {
		t.Fatalf("status %+v, want all %d points ran", status, len(pts))
	}
	if a, b := renderResults(t, plain), renderResults(t, journaled); !bytes.Equal(a, b) {
		t.Fatalf("journaled artifact diverged:\n%s\nvs\n%s", b, a)
	}
	// A second fresh run must refuse the existing journal.
	if _, _, err := (Runner{}).RunJournaled(pts, JournalConfig{Path: path}); err == nil {
		t.Fatal("fresh journaled run clobbered an existing journal")
	}
	// A full resume re-runs nothing and matches again.
	resumed, status, err := Runner{Workers: 2}.Resume(pts, path)
	if err != nil {
		t.Fatal(err)
	}
	if status.Ran != 0 || status.Resumed != len(pts) {
		t.Fatalf("complete-journal resume status %+v", status)
	}
	if a, b := renderResults(t, plain), renderResults(t, resumed); !bytes.Equal(a, b) {
		t.Fatal("resumed artifact diverged from the plain run")
	}
}

// TestResumeTruncateAnywhere is the kill-anywhere property in-process:
// truncating the journal at every record boundary (and mid-record, the
// torn-write case) then resuming yields artifacts byte-identical to the
// uninterrupted run, across worker counts and kernels.
func TestResumeTruncateAnywhere(t *testing.T) {
	pts := journalTestPoints()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	baselineRes, _, err := Runner{Workers: 2}.RunJournaled(pts, JournalConfig{Path: full})
	if err != nil {
		t.Fatal(err)
	}
	baseline := renderResults(t, baselineRes)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Cut at 0, at every record boundary, and 3 bytes past each boundary
	// (a torn record).
	cuts := []int{0}
	for i, b := range data {
		if b == '\n' {
			cuts = append(cuts, i+1)
			if i+4 < len(data) {
				cuts = append(cuts, i+4)
			}
		}
	}
	runners := []Runner{
		{Workers: 1},
		{Workers: 3, Kernel: platform.KernelStrict},
	}
	for ci, cut := range cuts {
		r := runners[ci%len(runners)]
		path := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, status, err := r.Resume(pts, path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if got := renderResults(t, res); !bytes.Equal(baseline, got) {
			t.Fatalf("cut at %d: resumed artifact diverged:\n%s\nvs\n%s", cut, got, baseline)
		}
		if status.Resumed+status.Ran < len(pts) {
			t.Fatalf("cut at %d: %+v does not cover %d points", cut, status, len(pts))
		}
		os.Remove(path)
	}
}

// TestJournaledDrain: an interrupt stops new points, completes in-flight
// ones, flushes the journal, and a later resume finishes the campaign
// byte-identically.
func TestJournaledDrain(t *testing.T) {
	pts := journalTestPoints()
	plain, err := Runner{Workers: 2}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "drain.journal")
	var polled atomic.Int32
	r := Runner{Workers: 1, Interrupted: func() bool {
		// First poll admits one point; every later poll drains.
		return polled.Add(1) > 1
	}}
	partial, status, err := r.RunJournaled(pts, JournalConfig{Path: path})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("drained run returned %v, want ErrDrained", err)
	}
	if status.Ran != 1 || status.Skipped != 2 {
		t.Fatalf("drain status %+v, want 1 ran / 2 skipped", status)
	}
	_ = partial
	resumed, status, err := Runner{Workers: 2}.Resume(pts, path)
	if err != nil {
		t.Fatal(err)
	}
	if status.Resumed != 1 || status.Ran != 2 {
		t.Fatalf("post-drain resume status %+v", status)
	}
	if a, b := renderResults(t, plain), renderResults(t, resumed); !bytes.Equal(a, b) {
		t.Fatal("post-drain resume diverged from the plain run")
	}
}

// TestResumeRejectsDifferentCampaign: a journal can only resume the point
// set that wrote it.
func TestResumeRejectsDifferentCampaign(t *testing.T) {
	pts := journalTestPoints()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if _, _, err := (Runner{Workers: 2}).RunJournaled(pts, JournalConfig{Path: path}); err != nil {
		t.Fatal(err)
	}
	other := journalTestPoints()
	other[0].Seed = 99
	if _, _, err := (Runner{}).Resume(other, path); err == nil {
		t.Fatal("journal resumed a different campaign")
	}
}

// TestPointKeyExecutionOnlyKnobs: shard counts and retry policies never
// change what a point computes, so they must not change its journal key —
// a campaign resumes across -shards/-retries changes. Identity fields do.
func TestPointKeyExecutionOnlyKnobs(t *testing.T) {
	p := journalTestPoints()[0]
	base := PointKey(p)
	q := p
	q.Shards = 4
	q.Retry = &RetryPolicy{MaxAttempts: 3}
	if PointKey(q) != base {
		t.Fatal("execution-only knobs changed the point key")
	}
	q = p
	q.Seed++
	if PointKey(q) == base {
		t.Fatal("seed change kept the point key")
	}
}

// TestRetryTransientPanicRecovers: a worker panic on the first attempt
// (injected via a panicking fault hook) classifies transient, retries
// without the fault stimulus, and ends byte-identical to a clean run.
func TestRetryTransientPanicRecovers(t *testing.T) {
	pts := journalTestPoints()[:1]
	clean, err := Runner{}.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	r := Runner{
		Retry:  &RetryPolicy{MaxAttempts: 2},
		Faults: func(Point) *guard.FaultPlan { calls.Add(1); panic("injected worker panic") },
	}
	var attempts []int
	res, last, err := r.runPointRetry(&programCache{}, pts[0], true, 0, func(a int) error {
		attempts = append(attempts, a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("retried point still failed: %q", res.Err)
	}
	if last != 2 || len(attempts) != 2 || attempts[0] != 1 || attempts[1] != 2 {
		t.Fatalf("attempts %v (last %d), want [1 2]", attempts, last)
	}
	if calls.Load() != 1 {
		t.Fatalf("fault hook called %d times, want 1 (first attempt only)", calls.Load())
	}
	a, _ := json.Marshal(clean[0])
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Fatalf("recovered result diverged from the clean run:\n%s\nvs\n%s", b, a)
	}
}

// TestRetryQuarantinesDeterministic: a deadlock violation is a property
// of the configuration — one attempt, immediate quarantine, no matter the
// retry budget.
func TestRetryQuarantinesDeterministic(t *testing.T) {
	pts := guardTestPoints()[:1]
	cfg := guard.Config{NoRetireHorizon: 2000}
	r := Runner{
		Guard: &cfg,
		Retry: &RetryPolicy{MaxAttempts: 3},
		Faults: func(Point) *guard.FaultPlan {
			return &guard.FaultPlan{SlaveFreezes: []guard.SlaveFreeze{
				{Node: guardSharedNode, From: 0, To: 1 << 62}}}
		},
	}
	var attempts int
	res, last, err := r.runPointRetry(&programCache{}, pts[0], true, 0, func(int) error {
		attempts++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != guard.KindDeadlock {
		t.Fatalf("expected a deadlock violation, got %+v", res.Violation)
	}
	if attempts != 1 || last != 1 {
		t.Fatalf("deterministic failure took %d attempts, want 1", attempts)
	}
	if outcome, kind := journalOutcome(res); outcome != journal.OutcomeQuarantined || kind != string(guard.KindDeadlock) {
		t.Fatalf("outcome %s/%s, want quarantined/deadlock", outcome, kind)
	}
}

// TestRetryDeadlineBudget: the per-point deadline rides guard.RunBudget
// (arming a budget-only guard when the runner has none), classifies
// transient, and the fault-free retry under the strict-kernel fallback
// succeeds.
func TestRetryDeadlineBudget(t *testing.T) {
	pts := guardTestPoints()[:1]
	r := Runner{
		Kernel:    platform.KernelStrict,
		MaxCycles: 1 << 40,
		Retry:     &RetryPolicy{MaxAttempts: 2, DeadlineMS: 300},
		Faults: func(Point) *guard.FaultPlan {
			return &guard.FaultPlan{SlaveFreezes: []guard.SlaveFreeze{
				{Node: guardSharedNode, From: 0, To: 1 << 62}}}
		},
	}
	cache := &programCache{}
	res, last, err := r.runPointRetry(cache, pts[0], true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The first attempt is wedged by the frozen slave until the deadline
	// fires; assert the end state: recovered within two attempts, no
	// residual violation.
	if res.Err != "" || res.Violation != nil {
		t.Fatalf("deadline retry did not recover: err=%q violation=%+v", res.Err, res.Violation)
	}
	if last != 2 {
		t.Fatalf("recovered on attempt %d, want 2", last)
	}
}

// TestWriteArtifactsNoPartialOnFailure: a renderer failing mid-stream (a
// NaN float is unmarshalable JSON) must leave no artifact file at all —
// the atomic writer only renames complete renders into place.
func TestWriteArtifactsNoPartialOnFailure(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "results")
	bad := []Result{{ID: 1, ThroughputTPK: math.NaN()}}
	if err := WriteArtifacts(base, bad); err == nil {
		t.Fatal("NaN result serialised cleanly")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("failed write left %v behind", names)
	}
	// Same base succeeds afterwards with good data: nothing is wedged.
	if err := WriteArtifacts(base, []Result{{ID: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDrained: the pool-level drain primitive marks unstarted tasks
// ErrDrained and never tears a started one.
func TestRunDrained(t *testing.T) {
	var started atomic.Int32
	tasks := make([]func() error, 5)
	for i := range tasks {
		tasks[i] = func() error { started.Add(1); return nil }
	}
	var polls atomic.Int32
	errs := RunDrained(1, tasks, func() bool { return polls.Add(1) > 2 })
	var drained int
	for _, err := range errs {
		if errors.Is(err, ErrDrained) {
			drained++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if drained != 3 || started.Load() != 2 {
		t.Fatalf("%d drained / %d started, want 3 / 2", drained, started.Load())
	}
}
