package sweep

import (
	"fmt"
	"math"

	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/sim"
)

// Measure configures the phased measurement methodology for sweep points:
// a warmup window whose statistics are discarded, one or more measurement
// epochs whose statistics are the point's result, and an optional drain
// window. Attached to a Grid (or Point) it switches the runner from the
// legacy single-window accounting — which mixes cold-start transients into
// every histogram — to steady-state epoch accounting.
//
// Two measurement modes exist:
//
//   - fixed: Epochs measurement epochs of EpochCycles each (Epochs = 1
//     with EpochCycles = 0 is one open epoch to workload completion — the
//     exact legacy behaviour, which the phased property tests pin);
//   - adaptive: CITarget > 0 runs epochs of EpochCycles until the relative
//     95% confidence-interval half-width of the per-epoch latency means
//     drops to the target, a growing-latency saturation trend is detected,
//     or MaxEpochs is reached.
type Measure struct {
	// WarmupCycles is the discarded lead-in window (0 = none).
	WarmupCycles uint64 `json:"warmup,omitempty"`
	// EpochCycles is the measurement epoch length in cycles. 0 means one
	// open epoch running to workload completion.
	EpochCycles uint64 `json:"epoch_cycles,omitempty"`
	// Epochs is the fixed epoch count (fixed mode; default 1). Mutually
	// exclusive with CITarget.
	Epochs int `json:"epochs,omitempty"`
	// MaxEpochs caps adaptive mode (default 32). Only valid with CITarget.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// CITarget is the adaptive-mode convergence target: the relative 95%
	// confidence-interval half-width of the epoch latency means, e.g. 0.05
	// for ±5%.
	CITarget float64 `json:"ci_target,omitempty"`
	// DrainCycles bounds the post-measurement completion window (0 = none).
	DrainCycles uint64 `json:"drain,omitempty"`
}

// defaultMaxEpochs caps adaptive runs that never converge.
const defaultMaxEpochs = 32

// minCIEpochs is the smallest epoch count a confidence interval is
// computed from.
const minCIEpochs = 3

// Saturation trend detection: satTrendEpochs consecutive epochs each
// raising the latency mean by at least satTrendGrowth marks the point
// saturated (queues growing without a steady state).
const (
	satTrendEpochs = 4
	satTrendGrowth = 1.08
)

// Validate checks the measurement configuration.
func (m Measure) Validate() error {
	if m.CITarget < 0 || m.CITarget >= 1 || m.CITarget != m.CITarget {
		return fmt.Errorf("sweep: ci_target %g outside [0, 1)", m.CITarget)
	}
	if m.Epochs < 0 {
		return fmt.Errorf("sweep: negative epochs %d", m.Epochs)
	}
	if m.MaxEpochs < 0 {
		return fmt.Errorf("sweep: negative max_epochs %d", m.MaxEpochs)
	}
	if m.CITarget > 0 {
		if m.Epochs > 0 {
			return fmt.Errorf("sweep: epochs and ci_target are mutually exclusive (fixed vs adaptive mode)")
		}
		if m.EpochCycles == 0 {
			return fmt.Errorf("sweep: ci_target needs epoch_cycles > 0")
		}
	} else if m.MaxEpochs > 0 {
		return fmt.Errorf("sweep: max_epochs needs ci_target (adaptive mode)")
	}
	if m.Epochs > 1 && m.EpochCycles == 0 {
		return fmt.Errorf("sweep: %d epochs need epoch_cycles > 0", m.Epochs)
	}
	return nil
}

// maxEpochs resolves the effective epoch cap.
func (m Measure) maxEpochs() int {
	if m.CITarget > 0 {
		if m.MaxEpochs > 0 {
			return m.MaxEpochs
		}
		return defaultMaxEpochs
	}
	if m.Epochs > 0 {
		return m.Epochs
	}
	return 1
}

// EpochStat is one measurement epoch's statistics, aggregated over all
// masters from the system's stats registry at the epoch boundary.
type EpochStat struct {
	Epoch      int    `json:"epoch"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`
	// Transactions counts completed transactions (accepted posted writes +
	// responded reads) inside the epoch; Reads the responded reads.
	Transactions uint64 `json:"transactions"`
	Reads        uint64 `json:"reads"`
	// LatencyMean / LatencyMax summarise the epoch's accept-to-response
	// read latencies; ReqLatencyMean / ReqLatencyMax the assert-to-response
	// latencies including source queueing (the load-latency curve metric).
	LatencyMean    float64 `json:"latency_mean_cycles"`
	LatencyMax     uint64  `json:"latency_max_cycles"`
	ReqLatencyMean float64 `json:"req_latency_mean_cycles"`
	ReqLatencyMax  uint64  `json:"req_latency_max_cycles"`
	// ThroughputTPK is completed transactions per thousand epoch cycles.
	ThroughputTPK float64 `json:"throughput_tpk"`
	FlitsRouted   uint64  `json:"flits_routed,omitempty"`
	BusBusyCycles uint64  `json:"bus_busy_cycles,omitempty"`
	// Counters is the epoch's full registry counter snapshot — the
	// per-master, per-VC, per-message-class breakdowns (map keys serialise
	// sorted, so artifacts stay byte-deterministic).
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// PhaseStats is the phased-run extension of a Result (omitted entirely on
// legacy single-window runs).
type PhaseStats struct {
	WarmupCycles  uint64 `json:"warmup_cycles"`
	MeasureCycles uint64 `json:"measure_cycles"`
	DrainCycles   uint64 `json:"drain_cycles"`
	// Completed reports whether the workload finished and the fabric
	// drained (open-loop curve runs intentionally never complete).
	Completed bool `json:"completed"`
	// Converged reports that adaptive mode met its CI target; Saturated
	// that the growing-latency trend stopped it instead.
	Converged bool `json:"converged"`
	Saturated bool `json:"saturated"`
	// CIHalfWidthRel is the final relative 95% CI half-width of the epoch
	// latency means (0 when fewer than minCIEpochs epochs ran).
	CIHalfWidthRel float64 `json:"ci_half_width_rel"`
	// ReqLatency summarises assert-to-response request latency over the
	// whole measure phase.
	ReqLatency sim.HistogramSnapshot `json:"req_latency"`
	Epochs     []EpochStat           `json:"epochs"`
}

// tTable97p5 holds two-sided 95% Student-t quantiles for df 1..30; larger
// dfs use the normal 1.96.
var tTable97p5 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TQuantile returns the two-sided 95% Student-t quantile for df degrees
// of freedom (shared by the adaptive-epoch CI stop rule here and the
// offered-load fidelity check in internal/valid).
func TQuantile(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(tTable97p5) {
		return tTable97p5[df-1]
	}
	return 1.96
}

// relCIHalfWidth returns the relative 95% confidence-interval half-width
// of the epochs' request-latency means (the curve metric). An epoch
// without read samples makes the estimate meaningless and returns +Inf
// (never converged).
func relCIHalfWidth(epochs []EpochStat) float64 {
	n := len(epochs)
	if n < 2 {
		return math.Inf(1)
	}
	var mean float64
	for _, e := range epochs {
		if e.Reads == 0 {
			return math.Inf(1)
		}
		mean += e.ReqLatencyMean
	}
	mean /= float64(n)
	if mean <= 0 {
		return math.Inf(1)
	}
	var ss float64
	for _, e := range epochs {
		d := e.ReqLatencyMean - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return TQuantile(n-1) * sd / math.Sqrt(float64(n)) / mean
}

// latencyTrendGrowing reports whether every consecutive epoch pair grew
// the latency mean by the saturation factor.
func latencyTrendGrowing(epochs []EpochStat) bool {
	if len(epochs) < satTrendEpochs {
		return false
	}
	tail := epochs[len(epochs)-satTrendEpochs:]
	for i := 1; i < len(tail); i++ {
		if tail[i].Reads == 0 || tail[i].ReqLatencyMean < tail[i-1].ReqLatencyMean*satTrendGrowth {
			return false
		}
	}
	return true
}

// systemMeters resolves the per-master traffic-statistics view: the trace
// monitor when one wraps the port, otherwise the master itself (stochastic
// generators meter their own traffic for untraced open-loop runs).
func systemMeters(sys *platform.System) ([]ocp.TrafficMeter, error) {
	meters := make([]ocp.TrafficMeter, len(sys.Masters))
	for i := range sys.Masters {
		switch {
		case i < len(sys.Monitors) && sys.Monitors[i] != nil:
			meters[i] = sys.Monitors[i]
		default:
			m, ok := sys.Masters[i].(ocp.TrafficMeter)
			if !ok {
				return nil, fmt.Errorf("sweep: master %d exports no traffic statistics (enable tracing)", i)
			}
			meters[i] = m
		}
	}
	return meters, nil
}

// phasedTotals accumulates measure-phase totals across epochs.
type phasedTotals struct {
	txns, reads uint64
	flits, busy uint64
	latency     *sim.Histogram
	reqLatency  *sim.Histogram
}

// runPhased executes the phased methodology on an assembled system and
// fills the Result: the legacy summary fields carry the measure-phase
// aggregate (steady state only — warmup and drain traffic is excluded),
// and res.Phases carries the per-epoch breakdown.
func runPhased(sys *platform.System, m Measure, maxCycles uint64, res *Result) error {
	meters, err := systemMeters(sys)
	if err != nil {
		return err
	}
	reg := sys.Stats
	tot := phasedTotals{latency: sim.NewLatencyHistogram(), reqLatency: sim.NewLatencyHistogram()}
	ps := &PhaseStats{}
	adaptive := m.CITarget > 0

	collect := func(epoch int, start, end uint64) EpochStat {
		reg.Sync(end)
		eh := sim.NewLatencyHistogram()
		rh := sim.NewLatencyHistogram()
		st := EpochStat{Epoch: epoch, StartCycle: start, EndCycle: end}
		for _, mt := range meters {
			st.Transactions += mt.Transactions()
			st.Reads += mt.Reads()
			eh.Merge(mt.LatencyHist())
			rh.Merge(mt.RequestLatencyHist())
		}
		st.LatencyMean = eh.Mean()
		st.LatencyMax = eh.Max()
		st.ReqLatencyMean = rh.Mean()
		st.ReqLatencyMax = rh.Max()
		if end > start {
			st.ThroughputTPK = float64(st.Transactions) * 1000 / float64(end-start)
		}
		if sys.Net != nil {
			st.FlitsRouted = sys.Net.FlitsRouted()
		}
		if sys.Bus != nil {
			st.BusBusyCycles = sys.Bus.BusyCycles()
		}
		st.Counters = reg.CounterSnapshot()
		tot.txns += st.Transactions
		tot.reads += st.Reads
		tot.flits += st.FlitsRouted
		tot.busy += st.BusBusyCycles
		tot.latency.Merge(eh)
		tot.reqLatency.Merge(rh)
		reg.Reset()
		return st
	}

	cfg := sim.Phases{
		Warmup:    m.WarmupCycles,
		Epoch:     m.EpochCycles,
		MaxEpochs: m.maxEpochs(),
		Drain:     m.DrainCycles,
		AfterWarmup: func(now uint64) {
			// Discard warmup-phase statistics: settle the lazy credits so
			// they land (and are zeroed) on the warmup side of the boundary.
			reg.Sync(now)
			reg.Reset()
		},
		AfterEpoch: func(epoch int, start, end uint64) bool {
			ps.Epochs = append(ps.Epochs, collect(epoch, start, end))
			if !adaptive {
				return true
			}
			if latencyTrendGrowing(ps.Epochs) {
				ps.Saturated = true
				return false
			}
			if len(ps.Epochs) >= minCIEpochs {
				if rel := relCIHalfWidth(ps.Epochs); rel <= m.CITarget {
					ps.Converged = true
					return false
				}
			}
			return true
		},
	}

	pr, err := sys.RunPhased(cfg, maxCycles)
	if err != nil {
		return err
	}
	ps.WarmupCycles = pr.WarmupCycles
	ps.MeasureCycles = pr.MeasureCycles
	ps.DrainCycles = pr.DrainCycles
	ps.Completed = pr.Completed
	if rel := relCIHalfWidth(ps.Epochs); !math.IsInf(rel, 1) {
		ps.CIHalfWidthRel = rel
	}
	ps.ReqLatency = tot.reqLatency.Snapshot()
	res.Phases = ps

	res.Engine = sys.EngineSnapshot()
	res.Transactions = tot.txns
	res.Reads = tot.reads
	res.Latency = tot.latency.Snapshot()
	res.FlitsRouted = tot.flits
	res.BusBusyCycles = tot.busy
	if pr.Completed {
		// A completed workload reports the paper's makespan metrics, exactly
		// as the legacy single-window accounting does.
		makespan := sys.Makespan()
		res.MakespanCycles = makespan
		res.MakespanNS = sys.Engine.Clock().NS(makespan)
		if makespan > 0 {
			res.ThroughputTPK = float64(res.Transactions) * 1000 / float64(makespan)
		}
	} else if pr.MeasureCycles > 0 {
		// Open-loop steady state: throughput over the measured window.
		res.ThroughputTPK = float64(res.Transactions) * 1000 / float64(pr.MeasureCycles)
	}
	return nil
}
