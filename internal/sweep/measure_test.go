package sweep

import (
	"bytes"
	"math/rand"
	"testing"

	"noctg/internal/platform"
)

// legacyEquivalentMeasure is the phased configuration the equivalence
// property pins: no warmup, one open epoch to completion, no drain.
func legacyEquivalentMeasure() *Measure { return &Measure{Epochs: 1} }

// stripPhases clears the phased extension so a phased Result can be
// compared byte-for-byte against a legacy one.
func stripPhases(results []Result) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].Phases = nil
	}
	return out
}

func marshalResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomPoint draws one randomized stochastic scenario point.
func randomPoint(rng *rand.Rand) Point {
	patterns := []string{"", "uniform", "transpose", "bitcomp", "bitrev", "hotspot", "neighbor"}
	dists := []string{"uniform", "gaussian", "poisson", "bursty"}
	w := Workload{
		Kind:    KindStochastic,
		Dist:    dists[rng.Intn(len(dists))],
		Cores:   4,
		MeanGap: []float64{3, 6, 12}[rng.Intn(3)],
		Count:   100 + rng.Intn(200),
	}
	if pat := patterns[rng.Intn(len(patterns))]; pat != "" {
		w.Pattern = pat
		w.PatternW, w.PatternH = 2, 2
		if pat == "hotspot" {
			w.Hotspot = []float64{0, 0.7, 0, 0}
		}
	}
	fabrics := []Fabric{
		{Interconnect: FabricAMBA},
		{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 3},
		{Interconnect: FabricXPipes, Topology: "torus", MeshWidth: 4, MeshHeight: 3},
	}
	return Point{
		Workload:      w,
		Fabric:        fabrics[rng.Intn(len(fabrics))],
		ClockPeriodNS: 5,
		Seed:          rng.Int63n(1 << 20),
	}
}

// TestPhasedLegacyEquivalenceProperty is the compatibility property the
// refactor hinges on: for randomized scenarios, under all three kernels, a
// phased run with warmup=0, epochs=1, drain=0 produces a Result — and a
// serialised artifact — byte-identical to the legacy single-window run
// (modulo the purely additive phases block).
func TestPhasedLegacyEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		base := randomPoint(rng)
		phased := base
		phased.Measure = legacyEquivalentMeasure()
		for _, kernel := range diffKernels() {
			r := Runner{Kernel: kernel}
			legacy, err := r.Run([]Point{base})
			if err != nil {
				t.Fatal(err)
			}
			ph, err := r.Run([]Point{phased})
			if err != nil {
				t.Fatal(err)
			}
			if legacy[0].Err != "" || ph[0].Err != "" {
				t.Fatalf("trial %d kernel %v: errs %q / %q (point %+v)",
					trial, kernel, legacy[0].Err, ph[0].Err, base)
			}
			if ph[0].Phases == nil {
				t.Fatalf("trial %d kernel %v: phased run reported no phase stats", trial, kernel)
			}
			if !ph[0].Phases.Completed || ph[0].Phases.WarmupCycles != 0 || len(ph[0].Phases.Epochs) != 1 {
				t.Fatalf("trial %d kernel %v: phase stats %+v", trial, kernel, ph[0].Phases)
			}
			want := marshalResults(t, legacy)
			got := marshalResults(t, stripPhases(ph))
			if !bytes.Equal(want, got) {
				t.Fatalf("trial %d kernel %v (%s @ %s): phased(0,1,0) diverged from legacy\nlegacy: %s\nphased: %s",
					trial, kernel, legacy[0].Workload, legacy[0].Fabric, want, got)
			}
		}
	}
}

// TestPhasedKernelDifferential asserts the second half of the invariant:
// a genuinely phased run (warmup, fixed epochs, drain) is byte-identical —
// including every epoch's counter breakdown — across the strict, skip and
// event kernels.
func TestPhasedKernelDifferential(t *testing.T) {
	m := &Measure{WarmupCycles: 300, EpochCycles: 400, Epochs: 3, DrainCycles: 10_000}
	var points []Point
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3; i++ {
		p := randomPoint(rng)
		p.ID = i
		p.Measure = m
		points = append(points, p)
	}
	strict, err := Runner{Kernel: platform.KernelStrict}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range strict {
		if r.Err != "" {
			t.Fatalf("strict point %d: %s", r.ID, r.Err)
		}
		if r.Phases == nil || len(r.Phases.Epochs) == 0 {
			t.Fatalf("strict point %d: no phase stats", r.ID)
		}
	}
	want := marshalResults(t, strict)
	for _, kernel := range diffKernels()[1:] {
		got, err := Runner{Kernel: kernel}.Run(points)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, marshalResults(t, got)) {
			t.Fatalf("phased artifacts differ between strict and %v kernels", kernel)
		}
	}
}

// TestPhasedAdaptiveEpochs exercises the CI-driven stopping mode: the run
// must stop between minCIEpochs and the cap, report convergence, and tile
// the measure window exactly with its epochs.
func TestPhasedAdaptiveEpochs(t *testing.T) {
	p := Point{
		Workload: Workload{Kind: KindStochastic, Dist: "poisson", Cores: 4,
			Pattern: "uniform", PatternW: 2, PatternH: 2, Count: 1 << 30, MeanGap: 6},
		Fabric:        Fabric{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 3},
		ClockPeriodNS: 5,
		Seed:          1,
		Measure:       &Measure{WarmupCycles: 1000, EpochCycles: 2000, CITarget: 0.1},
	}
	res, err := Runner{}.Run([]Point{p})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != "" {
		t.Fatal(res[0].Err)
	}
	ps := res[0].Phases
	if ps == nil {
		t.Fatal("no phase stats")
	}
	if !ps.Converged {
		t.Fatalf("adaptive run did not converge: %+v", ps)
	}
	if n := len(ps.Epochs); n < minCIEpochs || n >= defaultMaxEpochs {
		t.Fatalf("epochs = %d", n)
	}
	if ps.CIHalfWidthRel <= 0 || ps.CIHalfWidthRel > 0.1 {
		t.Fatalf("ci half-width = %g", ps.CIHalfWidthRel)
	}
	if ps.WarmupCycles != 1000 {
		t.Fatalf("warmup = %d", ps.WarmupCycles)
	}
	// Epochs tile the measure window contiguously.
	start := uint64(1000)
	for i, e := range ps.Epochs {
		if e.StartCycle != start || e.EndCycle != start+2000 {
			t.Fatalf("epoch %d window [%d,%d), want [%d,%d)", i, e.StartCycle, e.EndCycle, start, start+2000)
		}
		start = e.EndCycle
		if e.Counters == nil {
			t.Fatalf("epoch %d has no counter breakdown", i)
		}
		// The per-VC breakdown must tally with the total flit count.
		var vcs uint64
		for _, name := range []string{"noc/flits/req", "noc/flits/resp", "noc/flits/req_dl", "noc/flits/resp_dl"} {
			vcs += e.Counters[name]
		}
		if vcs != e.Counters["noc/flits_routed"] || e.FlitsRouted != vcs {
			t.Fatalf("epoch %d: per-VC flits %d != total %d (%d)", i, vcs, e.Counters["noc/flits_routed"], e.FlitsRouted)
		}
	}
	if ps.MeasureCycles != start-1000 {
		t.Fatalf("measure cycles = %d, epochs covered %d", ps.MeasureCycles, start-1000)
	}
}

func TestMeasureValidate(t *testing.T) {
	valid := []Measure{
		{},
		{Epochs: 1},
		{WarmupCycles: 100, EpochCycles: 200, Epochs: 4, DrainCycles: 50},
		{EpochCycles: 200, CITarget: 0.05, MaxEpochs: 10},
	}
	for i, m := range valid {
		if err := m.Validate(); err != nil {
			t.Errorf("valid measure %d rejected: %v", i, err)
		}
	}
	invalid := []Measure{
		{CITarget: -0.1},
		{CITarget: 1},
		{CITarget: 0.05}, // adaptive without epoch_cycles
		{EpochCycles: 100, CITarget: 0.05, Epochs: 2}, // both modes
		{MaxEpochs: 5}, // cap without adaptive mode
		{Epochs: 3},    // multiple epochs without a length
		{Epochs: -1},
	}
	for i, m := range invalid {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid measure %d accepted: %+v", i, m)
		}
	}
}
