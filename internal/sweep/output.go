package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteJSON renders the result set as indented JSON. Field order and float
// formatting are fixed, so identical results serialise to identical bytes.
func WriteJSON(w io.Writer, results []Result) error {
	return writeJSON(w, results)
}

// writeJSON is the shared indented encoder behind every JSON artifact.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// csvHeader is the fixed column set of WriteCSV.
var csvHeader = []string{
	"id", "workload", "fabric", "clock_period_ns", "seed", "err",
	"makespan_cycles", "makespan_ns", "engine_cycles",
	"transactions", "reads", "latency_mean_cycles", "latency_max_cycles",
	"throughput_tpk", "flits_routed", "bus_busy_cycles",
}

// WriteCSV renders the result set as CSV with a fixed header.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.ID),
			r.Workload,
			r.Fabric,
			strconv.FormatUint(r.ClockPeriodNS, 10),
			strconv.FormatInt(r.Seed, 10),
			r.Err,
			strconv.FormatUint(r.MakespanCycles, 10),
			strconv.FormatUint(r.MakespanNS, 10),
			strconv.FormatUint(r.Engine.Cycles, 10),
			strconv.FormatUint(r.Transactions, 10),
			strconv.FormatUint(r.Reads, 10),
			strconv.FormatFloat(r.Latency.Mean, 'g', -1, 64),
			strconv.FormatUint(r.Latency.Max, 10),
			strconv.FormatFloat(r.ThroughputTPK, 'g', -1, 64),
			strconv.FormatUint(r.FlitsRouted, 10),
			strconv.FormatUint(r.BusBusyCycles, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
