package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"noctg/internal/journal"
)

// WriteJSON renders the result set as indented JSON. Field order and float
// formatting are fixed, so identical results serialise to identical bytes.
func WriteJSON(w io.Writer, results []Result) error {
	return writeJSON(w, results)
}

// writeJSON is the shared indented encoder behind every JSON artifact.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteArtifacts writes the result set to <base>.json and <base>.csv. Any
// filesystem failure — an unwritable or missing output directory, a full
// disk — comes back as an error, never a panic. Each file is written
// atomically (rendered in memory, temp file + rename): a crash or failure
// mid-write can never leave a torn artifact where a result set should be.
func WriteArtifacts(base string, results []Result) error {
	return writePair(base, func(w io.Writer) error { return WriteJSON(w, results) },
		func(w io.Writer) error { return WriteCSV(w, results) })
}

// WriteCurveArtifacts writes load-latency curves to <base>.json and
// <base>.csv with WriteArtifacts' error semantics.
func WriteCurveArtifacts(base string, curves []Curve) error {
	return writePair(base, func(w io.Writer) error { return WriteCurvesJSON(w, curves) },
		func(w io.Writer) error { return WriteCurvesCSV(w, curves) })
}

// writePair renders <base>.json and <base>.csv into memory and writes
// each through the atomic temp-file-plus-rename helper.
func writePair(base string, renderJSON, renderCSV func(io.Writer) error) error {
	write := func(path string, render func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		return journal.AtomicWrite(path, buf.Bytes())
	}
	if err := write(base+".json", renderJSON); err != nil {
		return err
	}
	return write(base+".csv", renderCSV)
}

// csvHeader is the fixed column set of WriteCSV.
var csvHeader = []string{
	"id", "workload", "fabric", "clock_period_ns", "seed", "err",
	"makespan_cycles", "makespan_ns", "engine_cycles",
	"transactions", "reads", "latency_mean_cycles", "latency_max_cycles",
	"throughput_tpk", "flits_routed", "bus_busy_cycles", "estimated",
}

// WriteCSV renders the result set as CSV with a fixed header.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			strconv.Itoa(r.ID),
			r.Workload,
			r.Fabric,
			strconv.FormatUint(r.ClockPeriodNS, 10),
			strconv.FormatInt(r.Seed, 10),
			r.Err,
			strconv.FormatUint(r.MakespanCycles, 10),
			strconv.FormatUint(r.MakespanNS, 10),
			strconv.FormatUint(r.Engine.Cycles, 10),
			strconv.FormatUint(r.Transactions, 10),
			strconv.FormatUint(r.Reads, 10),
			strconv.FormatFloat(r.Latency.Mean, 'g', -1, 64),
			strconv.FormatUint(r.Latency.Max, 10),
			strconv.FormatFloat(r.ThroughputTPK, 'g', -1, 64),
			strconv.FormatUint(r.FlitsRouted, 10),
			strconv.FormatUint(r.BusBusyCycles, 10),
			strconv.FormatBool(r.Estimated),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
