package sweep

import (
	"errors"
	"fmt"

	"noctg/internal/amba"
	"noctg/internal/exp"
	"noctg/internal/platform"
	"noctg/internal/prog"
)

// PaperSelect chooses which experiment families RunPaperSelect executes.
type PaperSelect struct {
	Table2     bool
	CrossCheck bool
	Overhead   bool
	Ablation   bool
	Fig2       bool
}

// AllPaper selects every experiment family.
func AllPaper() PaperSelect {
	return PaperSelect{Table2: true, CrossCheck: true, Overhead: true, Ablation: true, Fig2: true}
}

// PaperResults aggregates the paper's Section 3/6 experiments, each slot
// filled by an independent task of one parallel sweep invocation.
type PaperResults struct {
	// Table2 rows, in Sizes.Specs order.
	Table2 []*exp.Row
	// CrossChecks holds the .tgp equality results per benchmark.
	CrossChecks []*exp.CrossCheckResult
	// Overhead is the trace-collection cost experiment.
	Overhead *exp.OverheadResult
	// Fidelity is the generator-model ablation (trace AMBA → replay ×pipes).
	Fidelity []*exp.FidelityRow
	// Arbitration is the bus arbitration-policy ablation.
	Arbitration []*exp.ArbitrationRow
	// Fig2a / Fig2b are the transaction-semantics and reactivity figures.
	Fig2a *exp.Fig2aResult
	Fig2b *exp.Fig2bResult
}

// RunPaper executes every paper experiment as one parallel invocation.
func RunPaper(sizes exp.Sizes, opt exp.Options, workers int) (*PaperResults, error) {
	return RunPaperSelect(sizes, opt, workers, AllPaper())
}

// RunPaperSelect fans the selected experiment families out over one worker
// pool: every Table 2 row, cross-check benchmark, ablation and figure is an
// independent task with its own engines, so the whole evaluation runs at
// host-core parallelism while producing exactly the simulated-cycle results
// of the sequential harness. Wall-clock metrics (Row.WallARM/WallTG/Gain,
// OverheadResult durations) contend for host cores when workers > 1; run
// with workers == 1 when timing fidelity matters.
func RunPaperSelect(sizes exp.Sizes, opt exp.Options, workers int, sel PaperSelect) (*PaperResults, error) {
	res := &PaperResults{}
	var tasks []func() error

	if sel.Table2 {
		specs := sizes.Specs()
		res.Table2 = make([]*exp.Row, len(specs))
		for i, spec := range specs {
			i, spec := i, spec
			tasks = append(tasks, func() error {
				row, err := exp.MeasureRow(spec, opt)
				if err != nil {
					return fmt.Errorf("table2 %s/%dP: %w", spec.Name, spec.Cores, err)
				}
				res.Table2[i] = row
				return nil
			})
		}
	}
	if sel.CrossCheck {
		specs := crossCheckSpecs(sizes)
		res.CrossChecks = make([]*exp.CrossCheckResult, len(specs))
		for i, spec := range specs {
			i, spec := i, spec
			tasks = append(tasks, func() error {
				cc, err := exp.CrossCheck(spec, opt)
				if err != nil {
					return fmt.Errorf("crosscheck %s: %w", spec.Name, err)
				}
				res.CrossChecks[i] = cc
				return nil
			})
		}
	}
	if sel.Overhead {
		tasks = append(tasks, func() error {
			o, err := exp.MeasureOverhead(prog.MPMatrix(4, sizes.MPMatrixN), opt)
			if err != nil {
				return fmt.Errorf("overhead: %w", err)
			}
			res.Overhead = o
			return nil
		})
	}
	if sel.Ablation {
		tasks = append(tasks, func() error {
			target := opt
			target.Platform.Interconnect = platform.XPipes
			rows, err := exp.AblationGenerators(prog.MPMatrix(4, sizes.MPMatrixN), opt, target)
			if err != nil {
				return fmt.Errorf("ablation generators: %w", err)
			}
			res.Fidelity = rows
			return nil
		})
		tasks = append(tasks, func() error {
			rows, err := exp.AblationArbitration(prog.MPMatrix(4, sizes.MPMatrixN), opt,
				[]amba.Policy{amba.RoundRobin, amba.FixedPriority, amba.TDMA})
			if err != nil {
				return fmt.Errorf("ablation arbitration: %w", err)
			}
			res.Arbitration = rows
			return nil
		})
	}
	if sel.Fig2 {
		tasks = append(tasks, func() error {
			f, err := exp.Fig2a(opt)
			if err != nil {
				return fmt.Errorf("fig2a: %w", err)
			}
			res.Fig2a = f
			return nil
		})
		tasks = append(tasks, func() error {
			f, err := exp.Fig2b(prog.MPMatrix(2, sizes.MPMatrixN), opt)
			if err != nil {
				return fmt.Errorf("fig2b: %w", err)
			}
			res.Fig2b = f
			return nil
		})
	}

	if err := errors.Join(RunDrained(workers, tasks, opt.Interrupted)...); err != nil {
		return res, err
	}
	return res, nil
}

// crossCheckSpecs mirrors the benchmark set of the sequential harness
// (cmd/tgrepro): one representative per multi-master workload family.
func crossCheckSpecs(sizes exp.Sizes) []*prog.Spec {
	return []*prog.Spec{
		prog.Cacheloop(2, sizes.CacheloopIters),
		prog.MPMatrix(4, sizes.MPMatrixN),
		prog.DES(3, sizes.DESBlocks),
	}
}
