package sweep

import (
	"testing"

	"noctg/internal/exp"
)

func tinySizes() exp.Sizes {
	return exp.Sizes{
		SPMatrixN:      8,
		CacheloopIters: 500,
		MPMatrixN:      8,
		DESBlocks:      2,
		CacheloopCores: []int{2},
		MPMatrixCores:  []int{2},
		DESCores:       []int{3},
	}
}

// TestRunPaperMatchesSequentialHarness pins the port: the parallel paper
// invocation must produce exactly the simulated-cycle results of the
// sequential exp harness.
func TestRunPaperMatchesSequentialHarness(t *testing.T) {
	sizes := tinySizes()
	opt := exp.DefaultOptions()

	res, err := RunPaperSelect(sizes, opt, 8, PaperSelect{Table2: true, CrossCheck: true, Fig2: true})
	if err != nil {
		t.Fatal(err)
	}

	seq, err := exp.Table2(sizes, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table2) != len(seq) {
		t.Fatalf("parallel produced %d rows, sequential %d", len(res.Table2), len(seq))
	}
	for i, row := range res.Table2 {
		if row.Bench != seq[i].Bench || row.Cores != seq[i].Cores ||
			row.CyclesARM != seq[i].CyclesARM || row.CyclesTG != seq[i].CyclesTG {
			t.Fatalf("row %d diverged: parallel %+v vs sequential %+v", i, row, seq[i])
		}
	}

	if len(res.CrossChecks) != 3 {
		t.Fatalf("expected 3 cross-checks, got %d", len(res.CrossChecks))
	}
	for _, cc := range res.CrossChecks {
		if !cc.Equal {
			t.Fatalf("%s: .tgp differs across interconnects: %s", cc.Bench, cc.FirstDiff)
		}
	}

	if res.Fig2a == nil || !res.Fig2a.ReadsSlower() {
		t.Fatalf("fig2a: blocking reads must be slower than posted writes: %+v", res.Fig2a)
	}
	if res.Fig2b == nil || !res.Fig2b.Reactive() {
		t.Fatalf("fig2b: slower fabric must lengthen the run and grow polls: %+v", res.Fig2b)
	}
}

func TestRunPaperAblationAndOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	res, err := RunPaperSelect(tinySizes(), exp.DefaultOptions(), 4,
		PaperSelect{Overhead: true, Ablation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead == nil || res.Overhead.TraceBytes == 0 {
		t.Fatalf("overhead experiment missing: %+v", res.Overhead)
	}
	if len(res.Fidelity) == 0 || len(res.Arbitration) != 3 {
		t.Fatalf("ablations missing: fidelity %d, arbitration %d",
			len(res.Fidelity), len(res.Arbitration))
	}
}
