package sweep

import (
	"fmt"
	"io"

	"noctg/internal/exp"
)

// TimingCaveat is the warning CLIs print when wall-clock experiment columns
// run under a parallel worker pool.
const TimingCaveat = "note: wall-time columns (time ARM/TG, gain) contend for host cores under parallel execution; use -workers 1 for timing fidelity (simulated cycles are exact either way)"

// FormatPaper renders the selected experiment families of one parallel
// paper run in the report layout shared by cmd/tgrepro and cmd/tgsweep.
func FormatPaper(w io.Writer, res *PaperResults, sel PaperSelect) {
	if sel.Table2 {
		fmt.Fprintln(w, "== Table 2: TG vs ARM performance with AMBA ==")
		fmt.Fprint(w, exp.FormatTable2(res.Table2))
		fmt.Fprintln(w)
	}
	if sel.CrossCheck {
		fmt.Fprintln(w, "== Cross-interconnect .tgp equality (AMBA vs xpipes) ==")
		for _, cc := range res.CrossChecks {
			verdict := "IDENTICAL"
			if !cc.Equal {
				verdict = "DIFFER: " + cc.FirstDiff
			}
			fmt.Fprintf(w, "%-10s %dP: AMBA %d cycles, xpipes %d cycles, programs %s (%d insts)\n",
				cc.Bench, cc.Cores, cc.MakespanA, cc.MakespanX, verdict, cc.ProgramLen)
		}
		fmt.Fprintln(w)
	}
	if sel.Overhead {
		fmt.Fprintln(w, "== Trace-collection overhead (MP matrix, 4 processors) ==")
		fmt.Fprintf(w, "plain run        : %v\n", res.Overhead.PlainWall)
		fmt.Fprintf(w, "with tracing     : %v\n", res.Overhead.TracedWall)
		fmt.Fprintf(w, "translation      : %v\n", res.Overhead.TranslateWall)
		fmt.Fprintf(w, "trace size       : %d bytes\n", res.Overhead.TraceBytes)
		fmt.Fprintln(w)
	}
	if sel.Ablation {
		fmt.Fprintln(w, "== Generator fidelity on a different interconnect (trace AMBA → replay xpipes) ==")
		for _, r := range res.Fidelity {
			if !r.Completed {
				fmt.Fprintf(w, "%-10s: DID NOT COMPLETE (ground truth %d cycles)\n", r.Kind, r.GroundTruth)
				continue
			}
			fmt.Fprintf(w, "%-10s: %d cycles vs ground truth %d (error %.2f%%)\n",
				r.Kind, r.Makespan, r.GroundTruth, r.ErrorPct)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "== Arbitration-policy ablation (MP matrix, 4 processors) ==")
		for _, r := range res.Arbitration {
			fmt.Fprintf(w, "%-15s: makespan %d cycles, worst master wait %d cycles\n",
				r.Policy, r.Makespan, r.MaxWait)
		}
		fmt.Fprintln(w)
	}
	if sel.Fig2 {
		fmt.Fprintln(w, "== Figure 2 ==")
		fmt.Fprintf(w, "fig2a: 4 posted writes %d cycles, 4 blocking reads %d cycles\n",
			res.Fig2a.WriteCycles, res.Fig2a.ReadCycles)
		fmt.Fprintf(w, "fig2b: same fabric %d cycles / %d failed polls, slow fabric %d cycles / %d failed polls\n",
			res.Fig2b.SameMakespan, res.Fig2b.SameFailedPolls, res.Fig2b.SlowMakespan, res.Fig2b.SlowFailedPolls)
	}
}
