package sweep

import (
	"fmt"
	"time"
)

// MaxRetryAttempts bounds a retry policy's attempt count: a point that
// fails transiently eight times in a row is not going to pass on the
// ninth, and an unbounded policy could stall a campaign on one point.
const MaxRetryAttempts = 8

// maxRetryBackoffMS bounds the base backoff (one minute); the exponential
// growth across attempts is bounded by MaxRetryAttempts.
const maxRetryBackoffMS = 60_000

// maxPointDeadlineMS bounds the per-point wall-clock deadline (one hour).
const maxPointDeadlineMS = 3_600_000

// RetryPolicy governs how the runner treats a failing point. Only
// transiently classified failures — wall-clock budget, barrier stall,
// recovered worker panic (guard.Kind.Transient) — are retried; failures
// that are deterministic properties of the configuration (deadlock, flit
// conservation, build errors) are quarantined as failed Results on the
// first attempt so the grid keeps draining.
//
// The policy is execution-only: it never changes what a passing point
// computes, so artifacts stay byte-identical with or without one.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per point, first run
	// included. 0 and 1 both mean no retries.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BackoffMS is the base delay before the second attempt; each further
	// attempt doubles it (exponential backoff).
	BackoffMS int `json:"backoff_ms,omitempty"`
	// DeadlineMS bounds one attempt's wall-clock time, threaded through
	// guard.Config.RunBudget (arming a budget-only guard when the runner
	// has none). A blown deadline is a transient failure. 0 disables.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Validate bounds the policy.
func (p *RetryPolicy) Validate() error {
	if p == nil {
		return nil
	}
	if p.MaxAttempts < 0 || p.MaxAttempts > MaxRetryAttempts {
		return fmt.Errorf("sweep: retry max_attempts %d out of range [0,%d]", p.MaxAttempts, MaxRetryAttempts)
	}
	if p.BackoffMS < 0 || p.BackoffMS > maxRetryBackoffMS {
		return fmt.Errorf("sweep: retry backoff_ms %d out of range [0,%d]", p.BackoffMS, maxRetryBackoffMS)
	}
	if p.DeadlineMS < 0 || p.DeadlineMS > maxPointDeadlineMS {
		return fmt.Errorf("sweep: retry deadline_ms %d out of range [0,%d]", p.DeadlineMS, maxPointDeadlineMS)
	}
	return nil
}

// attempts returns the effective attempt count (at least one).
func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// deadline returns the per-attempt wall-clock bound (0 disables).
func (p *RetryPolicy) deadline() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.DeadlineMS) * time.Millisecond
}

// backoff returns the sleep before retry attempt a (a >= 2), doubling
// per attempt from the configured base.
func (p *RetryPolicy) backoff(a int) time.Duration {
	if p == nil || p.BackoffMS <= 0 {
		return 0
	}
	d := time.Duration(p.BackoffMS) * time.Millisecond
	for i := 2; i < a; i++ {
		d *= 2
	}
	return d
}

// retryFor resolves the policy for one point: the runner-level policy
// (the -retries flags) overrides any per-point one from grid or scenario.
func (r Runner) retryFor(p Point) *RetryPolicy {
	if r.Retry != nil {
		return r.Retry
	}
	return p.Retry
}

// transientFailure reports whether a failed result is worth retrying:
// only failures carrying a transiently classified guard violation
// qualify. Failures with no violation at all (build or config errors)
// are deterministic.
func transientFailure(res Result) bool {
	return res.Violation != nil && res.Violation.Kind.Transient()
}

// runPointRetry drives one point through the retry policy. prior is the
// number of attempts already journaled for the point (0 on a fresh run),
// so attempt numbering continues across a resume. onAttempt, when set, is
// invoked before each attempt with its number (the journal's start
// record); an error from it aborts the run. It returns the final result
// and the last attempt number.
func (r Runner) runPointRetry(cache *programCache, p Point, trace bool, prior int, onAttempt func(int) error) (Result, int, error) {
	policy := r.retryFor(p)
	first := prior + 1
	last := policy.attempts()
	if last < first {
		// A resume past the policy's budget still owes the in-flight
		// attempt one completion.
		last = first
	}
	var res Result
	for a := first; ; a++ {
		if onAttempt != nil {
			if err := onAttempt(a); err != nil {
				return res, a, err
			}
		}
		res = r.runPointExec(cache, p, execOpts{
			trace:    trace,
			attempt:  a,
			fallback: a == last && last > 1,
			deadline: policy.deadline(),
		})
		if res.Err == "" || a >= last || !transientFailure(res) {
			return res, a, nil
		}
		if d := policy.backoff(a + 1); d > 0 {
			time.Sleep(d)
		}
	}
}
