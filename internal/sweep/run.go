package sweep

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"noctg/internal/analytic"
	"noctg/internal/core"
	"noctg/internal/exp"
	"noctg/internal/guard"
	"noctg/internal/layout"
	"noctg/internal/noc"
	"noctg/internal/ocp"
	"noctg/internal/platform"
	"noctg/internal/sim"
	"noctg/internal/stochastic"
)

// Result is the outcome of one grid point. Every field is derived from
// simulated state only — no wall-clock times — so a result set serialises
// identically no matter how many workers produced it. A failed run keeps
// its slot with Err set instead of aborting the sweep.
type Result struct {
	ID            int    `json:"id"`
	Workload      string `json:"workload"`
	Fabric        string `json:"fabric"`
	ClockPeriodNS uint64 `json:"clock_period_ns"`
	Seed          int64  `json:"seed"`
	Err           string `json:"err,omitempty"`
	// Violation carries the structured guard diagnostic when the failure
	// was a watchdog violation or a recovered panic; Err holds the flat
	// message either way. Fault-free points omit it, so guarded fault-free
	// artifacts stay byte-identical to unguarded ones.
	Violation *guard.Violation `json:"violation,omitempty"`

	// MakespanCycles is the latest master completion cycle; MakespanNS is
	// the same through the point's clock.
	MakespanCycles uint64 `json:"makespan_cycles"`
	MakespanNS     uint64 `json:"makespan_ns"`
	// Engine is the end-of-run kernel snapshot (includes drain cycles).
	Engine sim.Snapshot `json:"engine"`
	// Transactions counts OCP commands observed at the master ports;
	// Reads counts those with responses.
	Transactions uint64 `json:"transactions"`
	Reads        uint64 `json:"reads"`
	// Latency summarises per-read response latency in cycles.
	Latency sim.HistogramSnapshot `json:"latency"`
	// ThroughputTPK is transactions per thousand simulated cycles.
	ThroughputTPK float64 `json:"throughput_tpk"`
	// FlitsRouted counts NoC link traversals (zero on AMBA);
	// BusBusyCycles counts occupied bus cycles (zero on ×pipes).
	FlitsRouted   uint64 `json:"flits_routed"`
	BusBusyCycles uint64 `json:"bus_busy_cycles"`

	// Phases carries the phased-measurement breakdown (warmup/measure/
	// drain windows and per-epoch statistics); nil on legacy runs, so
	// phases-off artifacts are byte-identical to the pre-phase format.
	Phases *PhaseStats `json:"phases,omitempty"`

	// Estimated marks a result produced by the closed-form estimator
	// instead of simulation (analytic pre-pass, Point.Analytic): the point
	// sat far enough from the predicted knee — error bars included — that
	// the model brackets it confidently. Estimated results carry the
	// predicted throughput and mean latency; counters that only a
	// simulation can produce (makespan, flits, histograms) stay zero.
	// Omitempty keeps simulated artifacts byte-identical.
	Estimated bool `json:"estimated,omitempty"`
	// Analytic carries the full prediction on estimated results.
	Analytic *analytic.Estimate `json:"analytic,omitempty"`
}

// Runner executes grid points over a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent engines (<= 0 means GOMAXPROCS).
	Workers int
	// MaxCycles overrides the per-run cycle budget. Zero picks a default:
	// 8× the benchmark's MaxCycles for TG points (slow fabrics stretch the
	// run), 2,000,000 cycles for stochastic points.
	MaxCycles uint64
	// Kernel selects the simulation kernel for every grid point. The
	// default (KernelAuto) is the event-driven kernel: sweep points replay
	// TGs or stochastic generators, never ARM cores, and the skip and
	// event kernels produce byte-identical artifacts (asserted by
	// TestKernelDifferential).
	Kernel platform.KernelMode
	// Shards > 0 overrides every point's Shards setting, running each
	// ×pipes simulation across that many engine goroutines (the -shards
	// flag). Like Workers and Kernel it is execution-only: artifacts are
	// byte-identical for every shard count >= 1 (the CI shard-determinism
	// matrix pins this), though sharded runs form their own determinism
	// class versus legacy single-engine runs.
	Shards int
	// Guard arms the guard watchdogs (see internal/guard) on every point's
	// platform. Fault-free guarded points produce byte-identical artifacts
	// to unguarded ones; a violating or budget-exceeded point is recorded
	// as a failed Result (Err + Violation) and the rest of the grid
	// completes.
	Guard *guard.Config
	// Faults derives an optional deterministic fault plan per point (test
	// stimulus for the guard watchdogs); nil — or a nil/empty return —
	// injects nothing. Plans are injected on a point's first attempt only,
	// so a transient injected failure proves the retry path recovers.
	Faults func(Point) *guard.FaultPlan
	// Retry, when set, overrides every point's retry policy (the -retries
	// flags). Nil falls back to the per-point policy from grid/scenario;
	// nil both ways means one attempt per point and no deadline.
	Retry *RetryPolicy
	// Interrupted, when set, is polled before each point starts; once it
	// returns true the runner stops starting points (in-flight points
	// finish). Journaled runs report the skipped count for the resume
	// hint. Wired to SIGINT/SIGTERM by the CLIs.
	Interrupted func() bool
}

const stochasticMaxCycles = 2_000_000

// tgOverrun stretches a benchmark's cycle budget so slow sweep fabrics
// (deep wait states, small meshes) still finish.
const tgOverrun = 8

// programCache translates each distinct TG workload once and shares the
// read-only programs across every point (and worker) that replays them —
// the paper's trace-once/replay-many exploration flow. Sharing is safe:
// TG devices keep all mutable state (registers, PC) in the device, never
// in the program.
type programCache struct {
	mu sync.Mutex
	m  map[tgKey]*programEntry
}

// tgKey identifies a distinct translation: the benchmark spec is fully
// determined by name, core count and size (spatial-pattern fields belong
// to stochastic workloads, which never reach the cache).
type tgKey struct {
	Bench string
	Cores int
	Size  int
}

type programEntry struct {
	once  sync.Once
	progs []*core.Program
	err   error
}

func (c *programCache) get(w Workload) ([]*core.Program, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[tgKey]*programEntry)
	}
	k := tgKey{Bench: w.Bench, Cores: w.Cores, Size: w.Size}
	e, ok := c.m[k]
	if !ok {
		e = &programEntry{}
		c.m[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.progs, e.err = translate(w) })
	return e.progs, e.err
}

// translate runs the reference (cycle-true ARM, AMBA) platform traced and
// converts the traces into TG programs. The cross-interconnect equality
// property (Section 6) guarantees the programs are fabric-independent, so
// one translation serves every fabric in the grid.
func translate(w Workload) ([]*core.Program, error) {
	spec, err := w.spec()
	if err != nil {
		return nil, err
	}
	ref, err := exp.RunReference(spec, exp.DefaultOptions(), true)
	if err != nil {
		return nil, fmt.Errorf("sweep: reference %s: %w", w.Label(), err)
	}
	progs, _, _, err := exp.TranslateAll(spec, ref.Traces,
		core.DefaultTranslateConfig(exp.PollRangesFor(spec)))
	if err != nil {
		return nil, fmt.Errorf("sweep: translate %s: %w", w.Label(), err)
	}
	return progs, nil
}

// validatePoints rejects invalid points up front so a sweep (journaled or
// not) never records half a campaign before discovering a bad grid.
func (r Runner) validatePoints(points []Point) error {
	for _, p := range points {
		if err := p.Workload.validate(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", p.ID, err)
		}
		if _, err := p.Fabric.interconnect(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", p.ID, err)
		}
		if p.ClockPeriodNS == 0 {
			return fmt.Errorf("sweep: point %d: zero clock period", p.ID)
		}
		if p.Measure != nil {
			if err := p.Measure.Validate(); err != nil {
				return fmt.Errorf("sweep: point %d: %w", p.ID, err)
			}
		}
		if err := ValidateShards(p.Shards); err != nil {
			return fmt.Errorf("sweep: point %d: %w", p.ID, err)
		}
		if err := p.Retry.Validate(); err != nil {
			return fmt.Errorf("sweep: point %d: %w", p.ID, err)
		}
	}
	if err := ValidateShards(r.Shards); err != nil {
		return err
	}
	return r.Retry.Validate()
}

// Run executes every point and returns the results in point order,
// regardless of Workers. It returns an error only for an invalid grid
// point; individual run failures are recorded in Result.Err.
func (r Runner) Run(points []Point) ([]Result, error) {
	if err := r.validatePoints(points); err != nil {
		return nil, err
	}
	cache := &programCache{}
	return Map(r.Workers, points, func(_ int, p Point) (Result, error) {
		res, _, _ := r.runPointRetry(cache, p, true, 0, nil)
		return res, nil
	})
}

// RunGrid validates, expands and runs a grid.
func (r Runner) RunGrid(g Grid) ([]Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return r.Run(g.Expand())
}

// execOpts carries the per-attempt execution knobs the retry policy
// varies without touching the point itself.
type execOpts struct {
	// trace enables the per-port OCP monitors; open-loop curve points
	// disable them (their event logs would grow without bound) and meter
	// traffic at the generators instead.
	trace bool
	// attempt numbers this try (1-based, continuing across a resume).
	// Fault plans — test stimulus — inject on attempt 1 only, so an
	// injected transient failure proves the retry path recovers.
	attempt int
	// fallback is set on the final attempt of a retried point: the kernel
	// drops to strict and multi-shard runs collapse to one engine, trading
	// speed for the most conservative execution mode available.
	fallback bool
	// deadline bounds this attempt's wall clock through guard.RunBudget.
	deadline time.Duration
}

// Analytic pre-pass confidence bounds: a point is estimated instead of
// simulated only when the predicted bottleneck demand ratio — widened by
// the model's own knee error bar — puts it deep in the linear region or
// deep past saturation. Everything near the knee simulates.
const (
	analyticLowUtil  = 0.5
	analyticHighUtil = 1.25
)

// analyticEstimate fills res from the closed-form model when the point is
// confidently bracketed, reporting whether it did. It reports false —
// simulate normally — when the estimator cannot compile for this
// configuration, the workload has no finite mean gap, or the point sits
// too close to the predicted knee for the model's error bars. The
// decision is a pure function of the point (compilation is microseconds),
// so no cache is needed and determinism across workers is free.
func (r Runner) analyticEstimate(p Point, res *Result) bool {
	est, err := NewEstimator(p.Workload, p.Fabric)
	if err != nil {
		return false
	}
	gap := est.Spec().Traffic.MeanGap
	if gap <= 0 {
		return false
	}
	e := est.Estimate()
	u := est.DemandRatioAt(gap)
	lo := analyticLowUtil * (1 - e.KneeRelErr)
	hi := analyticHighUtil * (1 + e.KneeRelErr)
	if u > lo && u < hi {
		return false
	}
	res.Estimated = true
	res.Analytic = &e
	res.ThroughputTPK = est.ThroughputAt(gap)
	res.Latency = sim.HistogramSnapshot{Mean: est.LatencyAt(gap)}
	return true
}

// runPoint executes one configuration on its own engine with the default
// first-attempt options. A panicking model is recorded as that point's
// failure rather than aborting the sweep.
func (r Runner) runPoint(cache *programCache, p Point, trace bool) Result {
	return r.runPointExec(cache, p, execOpts{trace: trace, attempt: 1})
}

// runPointExec executes one attempt of one configuration.
func (r Runner) runPointExec(cache *programCache, p Point, opts execOpts) (res Result) {
	defer func() {
		if rec := recover(); rec != nil {
			// Keep the point's identity fields: a panic mid-build must still
			// say which configuration blew up.
			res.Err = fmt.Sprintf("panic: %v", rec)
			res.Violation = &guard.Violation{Kind: guard.KindPanic, Shard: -1,
				Msg:   fmt.Sprintf("point %s: %v", p.Label(), rec),
				Stack: string(debug.Stack())}
		}
	}()
	res = Result{
		ID:            p.ID,
		Workload:      p.Workload.Label(),
		Fabric:        p.Fabric.Label(),
		ClockPeriodNS: p.ClockPeriodNS,
		Seed:          p.Seed,
	}
	if p.Analytic && r.analyticEstimate(p, &res) {
		return res
	}
	ic, _ := p.Fabric.interconnect()
	kernel := r.Kernel
	if kernel == platform.KernelAuto {
		kernel = platform.KernelEvent
	}
	shards := p.Shards
	if r.Shards > 0 {
		shards = r.Shards
	}
	if opts.fallback {
		// Final-attempt fallback: strict kernel, single engine. Shards
		// collapse only from >1 — 0 stays 0 so a legacy single-engine
		// point keeps its determinism class.
		kernel = platform.KernelStrict
		if shards > 1 {
			shards = 1
		}
	}
	cfg := platform.Config{
		Cores:        p.Workload.Cores,
		Interconnect: ic,
		NoC: noc.Config{
			Width:       p.Fabric.MeshWidth,
			Height:      p.Fabric.MeshHeight,
			Topology:    p.Fabric.topology(),
			BufferFlits: p.Fabric.BufferFlits,
		},
		MemWaitStates: p.Fabric.MemWaitStates,
		Clock:         sim.Clock{PeriodNS: p.ClockPeriodNS},
		Trace:         opts.trace,
		Kernel:        kernel,
		Shards:        shards,
	}

	var (
		sys       *platform.System
		maxCycles uint64
		err       error
	)
	switch p.Workload.Kind {
	case KindTG:
		var progs []*core.Program
		progs, err = cache.get(p.Workload)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		spec, _ := p.Workload.spec()
		cfg.Cores = spec.Cores
		maxCycles = spec.MaxCycles * tgOverrun
		sys, err = platform.BuildTG(cfg, progs)
	case KindStochastic:
		maxCycles = stochasticMaxCycles
		var scfg stochastic.Config
		if scfg, err = p.Workload.StochasticConfig(p.Seed); err != nil {
			res.Err = err.Error()
			return res
		}
		scfg.Ranges = []ocp.AddrRange{layout.SharedRange()}
		sys, err = platform.Build(cfg, func(_ *platform.System, id int, port ocp.MasterPort) platform.Master {
			return stochastic.New(id, scfg, port)
		})
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if r.MaxCycles > 0 {
		maxCycles = r.MaxCycles
	}
	if r.Guard != nil || opts.deadline > 0 {
		var gcfg guard.Config
		if r.Guard != nil {
			gcfg = *r.Guard
		}
		if opts.deadline > 0 {
			// The per-point deadline rides the run-budget watchdog, arming
			// a budget-only guard when the runner has none.
			gcfg.RunBudget = opts.deadline
		}
		sys.EnableGuard(gcfg)
	}
	if r.Faults != nil && opts.attempt <= 1 {
		if plan := r.Faults(p); plan != nil && !plan.Empty() {
			if err := sys.InjectFaults(*plan); err != nil {
				res.Err = err.Error()
				return res
			}
		}
	}

	if p.Measure != nil {
		if err := runPhased(sys, *p.Measure, maxCycles, &res); err != nil {
			recordFailure(&res, err)
		}
		return res
	}

	makespan, err := sys.Run(maxCycles)
	if err != nil {
		recordFailure(&res, err)
		return res
	}
	res.MakespanCycles = makespan
	res.MakespanNS = sys.Engine.Clock().NS(makespan)
	res.Engine = sys.EngineSnapshot()

	hist := sim.NewLatencyHistogram()
	for _, mon := range sys.Monitors {
		for _, e := range mon.Events() {
			res.Transactions++
			if e.HasResp {
				hist.Observe(e.Resp - e.Accept)
			}
		}
	}
	res.Reads = hist.Count()
	res.Latency = hist.Snapshot()
	if makespan > 0 {
		res.ThroughputTPK = float64(res.Transactions) * 1000 / float64(makespan)
	}
	if sys.Net != nil {
		res.FlitsRouted = sys.Net.FlitsRouted()
	}
	if sys.Bus != nil {
		res.BusBusyCycles = sys.Bus.BusyCycles()
	}
	return res
}

// recordFailure records a run error on the result, preserving the typed
// guard violation (with its diagnostic dump) when the error carries one.
func recordFailure(res *Result, err error) {
	res.Err = err.Error()
	if v, ok := guard.AsViolation(err); ok {
		res.Violation = v
	}
}
