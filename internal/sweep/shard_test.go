package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"noctg/internal/platform"
)

// diffShardCounts is the partition matrix the sweep-level determinism gate
// pins, mirroring the CI shard-determinism job. Counts above a fabric's row
// count clamp deterministically, so 8 is valid even on short meshes.
var diffShardCounts = []int{2, 4, 8}

// assertShardDifferential runs points at shards=1 under each kernel and
// asserts every other shard count reproduces the Results — and the JSON and
// CSV artifacts serialised from them — byte for byte.
func assertShardDifferential(t *testing.T, points []Point, kernels []platform.KernelMode, counts []int) {
	t.Helper()
	for _, kernel := range kernels {
		ref, err := Runner{Kernel: kernel, Shards: 1}.Run(points)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i].Err != "" {
				t.Fatalf("%v shards=1 point %d (%s @ %s): %s", kernel, i, ref[i].Workload, ref[i].Fabric, ref[i].Err)
			}
		}
		var js, cs bytes.Buffer
		if err := WriteJSON(&js, ref); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&cs, ref); err != nil {
			t.Fatal(err)
		}
		// The shard count is execution-only: it must never leak into the
		// serialised artifacts.
		if bytes.Contains(js.Bytes(), []byte("shards")) {
			t.Fatal("shard count leaked into the JSON artifact")
		}

		for _, shards := range counts {
			got, err := Runner{Kernel: kernel, Shards: shards}.Run(points)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if !reflect.DeepEqual(ref[i], got[i]) {
					t.Fatalf("%v shards=%d point %d (%s @ %s) diverged from shards=1:\nref: %+v\ngot: %+v",
						kernel, shards, i, ref[i].Workload, ref[i].Fabric, ref[i], got[i])
				}
			}
			var jk, ck bytes.Buffer
			if err := WriteJSON(&jk, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(js.Bytes(), jk.Bytes()) {
				t.Fatalf("%v: JSON artifacts differ between shards=1 and shards=%d", kernel, shards)
			}
			if err := WriteCSV(&ck, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cs.Bytes(), ck.Bytes()) {
				t.Fatalf("%v: CSV artifacts differ between shards=1 and shards=%d", kernel, shards)
			}
		}
	}
}

// TestShardDifferentialScenarios is the sweep-level half of the
// shard-determinism gate: the full spatial-pattern × topology scenario
// sweep must serialise byte-identical artifacts at every shard count under
// every kernel. AMBA points ignore the shard count, which is itself part of
// the property (they must stay untouched).
func TestShardDifferentialScenarios(t *testing.T) {
	kernels := diffKernels()
	if testing.Short() {
		kernels = kernels[2:] // the event kernel is the sweep default
	}
	assertShardDifferential(t, ScenarioGrid().Expand(), kernels, diffShardCounts)
}

// TestShardDifferentialGrid extends the gate over the TG-replay grid: a
// trimmed kernel × shard matrix keeps the translation cost bounded while CI
// runs the full matrix through the tgsweep artifacts.
func TestShardDifferentialGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid shard differential re-translates the TG workloads repeatedly")
	}
	assertShardDifferential(t, DefaultGrid().Expand(),
		[]platform.KernelMode{platform.KernelStrict, platform.KernelEvent}, []int{2, 8})
}

// TestShardPointAndRunnerPrecedence pins the override order: a point's
// Shards setting applies when the Runner is silent, and the Runner's global
// override (the -shards flag) wins over the point.
func TestShardPointAndRunnerPrecedence(t *testing.T) {
	points := ScenarioGrid().Expand()[:2]
	ref, err := Runner{Shards: 2}.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	viaPoint := make([]Point, len(points))
	copy(viaPoint, points)
	for i := range viaPoint {
		viaPoint[i].Shards = 2
	}
	got, err := Runner{}.Run(viaPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("Point.Shards=2 and Runner.Shards=2 must run identically")
	}
	for i := range viaPoint {
		viaPoint[i].Shards = 64 // nonsense count the override must mask
	}
	got, err = Runner{Shards: 2}.Run(viaPoint)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("Runner.Shards must override Point.Shards")
	}
}

// TestValidateShards bounds the axis at both ends.
func TestValidateShards(t *testing.T) {
	for _, ok := range []int{0, 1, MaxShards} {
		if err := ValidateShards(ok); err != nil {
			t.Fatalf("ValidateShards(%d) = %v", ok, err)
		}
	}
	for _, bad := range []int{-1, MaxShards + 1} {
		if err := ValidateShards(bad); err == nil {
			t.Fatalf("ValidateShards(%d) accepted", bad)
		}
	}
}

// TestGoldenShardScenarios locks the sharded determinism class itself: the
// scenario sweep at shards=4 is snapshotted under testdata/golden/ so any
// drift in the conservative flow-control semantics (not just a partition
// asymmetry) fails CI with a diffable artifact.
func TestGoldenShardScenarios(t *testing.T) {
	results, err := Runner{Shards: 4}.Run(ScenarioGrid().Expand())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("point %d (%s @ %s): %s", r.ID, r.Workload, r.Fabric, r.Err)
		}
	}
	golden(t, "shard", results)
}
