// Package sweep is the parallel experiment-sweep runner: it fans a
// parameter grid (mesh dimensions, buffer depth, traffic workload, clock
// period, seed) out over a bounded worker pool, builds one independent
// sim.Engine per grid point, and collects per-run latency / throughput /
// flit metrics into JSON and CSV artifacts with stable ordering.
//
// Determinism is the package's contract: the simulation kernel is
// single-goroutine per engine and every grid point is self-contained, so
// the result set is byte-identical no matter how many workers execute it —
// a property the test suite verifies. The paper's whole value proposition
// is cheap design-space sweeps; this package is the substrate that turns
// the repository's one-engine-at-a-time harness into "all configurations,
// all cores, one invocation".
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Run executes tasks over a worker pool of the given size and returns each
// task's error at the task's own index. Output position never depends on
// worker count or goroutine scheduling — each task writes only its own
// slot — which is what lets callers guarantee identical artifacts across
// -workers settings. workers <= 0 means GOMAXPROCS. A panicking task is
// converted into an error rather than taking the whole sweep down.
func Run(workers int, tasks []func() error) []error {
	errs := make([]error, len(tasks))
	if len(tasks) == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = protect(tasks[i])
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errs
}

// protect runs f, converting a panic into an error.
func protect(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: task panic: %v", r)
		}
	}()
	return f()
}

// Map fans fn over items on a worker pool and returns the results in item
// order. The first argument of fn is the item's index. It returns a joined
// error of every failed item; successful items keep their results either
// way.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	tasks := make([]func() error, len(items))
	for i := range items {
		i := i
		tasks[i] = func() error {
			r, err := fn(i, items[i])
			if err != nil {
				return fmt.Errorf("item %d: %w", i, err)
			}
			out[i] = r
			return nil
		}
	}
	return out, errors.Join(Run(workers, tasks)...)
}
