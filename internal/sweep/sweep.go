// Package sweep is the parallel experiment-sweep runner: it fans a
// parameter grid (mesh dimensions, buffer depth, traffic workload, clock
// period, seed) out over a bounded worker pool, builds one independent
// sim.Engine per grid point, and collects per-run latency / throughput /
// flit metrics into JSON and CSV artifacts with stable ordering.
//
// Determinism is the package's contract: the simulation kernel is
// single-goroutine per engine and every grid point is self-contained, so
// the result set is byte-identical no matter how many workers execute it —
// a property the test suite verifies. The paper's whole value proposition
// is cheap design-space sweeps; this package is the substrate that turns
// the repository's one-engine-at-a-time harness into "all configurations,
// all cores, one invocation".
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrDrained marks a task that was never started because the pool was
// asked to drain (SIGINT/SIGTERM): in-flight tasks finished, this one did
// not begin. Journaled runs leave drained points incomplete for the next
// resume.
var ErrDrained = errors.New("sweep: drained before start")

// Run executes tasks over a worker pool of the given size and returns each
// task's error at the task's own index. Output position never depends on
// worker count or goroutine scheduling — each task writes only its own
// slot — which is what lets callers guarantee identical artifacts across
// -workers settings. workers <= 0 means GOMAXPROCS. A panicking task is
// converted into an error rather than taking the whole sweep down.
func Run(workers int, tasks []func() error) []error {
	return RunDrained(workers, tasks, nil)
}

// RunDrained is Run with a graceful-drain hook: interrupted (when
// non-nil) is polled before each task starts, and once it reports true
// the remaining tasks are marked ErrDrained instead of running. Tasks
// already started always finish — a drain never tears a task mid-run.
func RunDrained(workers int, tasks []func() error, interrupted func() bool) []error {
	errs := make([]error, len(tasks))
	if len(tasks) == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if interrupted != nil && interrupted() {
					errs[i] = ErrDrained
					continue
				}
				errs[i] = protect(tasks[i])
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errs
}

// protect runs f, converting a panic into an error.
func protect(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: task panic: %v", r)
		}
	}()
	return f()
}

// Map fans fn over items on a worker pool and returns the results in item
// order. The first argument of fn is the item's index. It returns a joined
// error of every failed item; successful items keep their results either
// way.
func Map[T, R any](workers int, items []T, fn func(int, T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	tasks := make([]func() error, len(items))
	for i := range items {
		i := i
		tasks[i] = func() error {
			r, err := fn(i, items[i])
			if err != nil {
				return fmt.Errorf("item %d: %w", i, err)
			}
			out[i] = r
			return nil
		}
	}
	return out, errors.Join(Run(workers, tasks)...)
}
