package sweep

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesTaskOrder(t *testing.T) {
	// Later tasks finish first on purpose; errors must still land at their
	// own indices.
	const n = 20
	var ran atomic.Int32
	tasks := make([]func() error, n)
	errOdd := errors.New("odd")
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() error {
			time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
			ran.Add(1)
			if i%2 == 1 {
				return errOdd
			}
			return nil
		}
	}
	errs := Run(4, tasks)
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d tasks", got, n)
	}
	for i, err := range errs {
		if (i%2 == 1) != (err != nil) {
			t.Fatalf("task %d: unexpected error state %v", i, err)
		}
	}
}

func TestRunRecoversPanics(t *testing.T) {
	errs := Run(2, []func() error{
		func() error { panic("boom") },
		func() error { return nil },
	})
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("healthy task failed: %v", errs[1])
	}
}

func TestMapKeepsItemOrder(t *testing.T) {
	items := []int{5, 4, 3, 2, 1, 0}
	out, err := Map(3, items, func(i, v int) (int, error) {
		time.Sleep(time.Duration(v) * time.Millisecond)
		return v * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if out[i] != v*10 {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], v*10)
		}
	}
}

func TestGridExpandOrderAndDefaults(t *testing.T) {
	g := Grid{
		Workloads: []Workload{
			{Kind: KindStochastic, Dist: "uniform", Cores: 2},
			{Kind: KindStochastic, Dist: "bursty", Cores: 2},
		},
		Fabrics: []Fabric{{Interconnect: FabricAMBA}, {Interconnect: FabricXPipes}},
	}
	pts := g.Expand()
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if p.ID != i {
			t.Fatalf("point %d has ID %d", i, p.ID)
		}
		if p.ClockPeriodNS != 5 || p.Seed != 1 {
			t.Fatalf("defaults not applied: %+v", p)
		}
	}
	// workload-major nesting
	if pts[0].Workload.Dist != "uniform" || pts[1].Workload.Dist != "uniform" ||
		pts[2].Workload.Dist != "bursty" {
		t.Fatalf("unexpected nesting order: %+v", pts)
	}
	if pts[0].Fabric.Interconnect != FabricAMBA || pts[1].Fabric.Interconnect != FabricXPipes {
		t.Fatalf("fabric should be the inner axis: %+v", pts)
	}
}

func TestGridValidateRejectsBadAxes(t *testing.T) {
	cases := []Grid{
		{},
		{Workloads: []Workload{{Kind: "nope"}}, Fabrics: []Fabric{{Interconnect: FabricAMBA}}},
		{Workloads: []Workload{{Kind: KindTG, Bench: "unknown", Cores: 2, Size: 4}},
			Fabrics: []Fabric{{Interconnect: FabricAMBA}}},
		{Workloads: []Workload{{Kind: KindStochastic, Dist: "uniform", Cores: 2}},
			Fabrics: []Fabric{{Interconnect: "token-ring"}}},
		{Workloads: []Workload{{Kind: KindStochastic, Dist: "weibull", Cores: 2}},
			Fabrics: []Fabric{{Interconnect: FabricAMBA}}},
		// Out-of-range benchmark sizes panic inside the prog constructors;
		// Validate must return an error, not crash.
		{Workloads: []Workload{{Kind: KindTG, Bench: "cacheloop", Cores: 0, Size: 100}},
			Fabrics: []Fabric{{Interconnect: FabricAMBA}}},
		{Workloads: []Workload{{Kind: KindTG, Bench: "spmatrix", Cores: 1, Size: 1}},
			Fabrics: []Fabric{{Interconnect: FabricAMBA}}},
		// A zero clock period would silently fall back to 5 ns inside the
		// engine while the artifact still reports 0.
		{Workloads: []Workload{{Kind: KindStochastic, Dist: "uniform", Cores: 2}},
			Fabrics:        []Fabric{{Interconnect: FabricAMBA}},
			ClockPeriodsNS: []uint64{0}},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: bad grid validated", i)
		}
	}
}

func TestPartialMeshDimensionFailsCleanly(t *testing.T) {
	// Only one mesh dimension given: the other defaults inside noc, and the
	// capacity check must apply to the effective geometry — a 4x(default 3)
	// mesh cannot hold 5 cores + 7 slaves.
	g := Grid{
		Workloads: []Workload{{Kind: KindStochastic, Dist: "uniform", Cores: 5, Count: 50}},
		Fabrics:   []Fabric{{Interconnect: FabricXPipes, MeshWidth: 4}},
	}
	res, err := Runner{Workers: 1}.RunGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == "" || !strings.Contains(res[0].Err, "too small") {
		t.Fatalf("want a clean mesh-too-small error, got %q", res[0].Err)
	}
}

func TestParseGridRejectsUnknownFields(t *testing.T) {
	_, err := ParseGrid(strings.NewReader(`{"workloads":[],"fabrics":[],"typo_field":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseGridRoundTrip(t *testing.T) {
	in := `{
  "workloads": [{"kind": "stochastic", "dist": "poisson", "cores": 2, "count": 100}],
  "fabrics": [{"interconnect": "xpipes", "mesh_width": 4, "mesh_height": 2, "buffer_flits": 2}],
  "clock_periods_ns": [5, 10],
  "seeds": [1, 2]
}`
	g, err := ParseGrid(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if pts := g.Expand(); len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
}

// testGrid is a fast ≥16-point grid mixing TG and stochastic workloads on
// both fabrics.
func testGrid() Grid {
	return Grid{
		Workloads: []Workload{
			{Kind: KindTG, Bench: "mpmatrix", Cores: 2, Size: 8},
			{Kind: KindTG, Bench: "cacheloop", Cores: 2, Size: 300},
			{Kind: KindStochastic, Dist: "uniform", Cores: 2, MeanGap: 6, Count: 200},
			{Kind: KindStochastic, Dist: "bursty", Cores: 2, MeanGap: 6, Count: 200},
		},
		Fabrics: []Fabric{
			{Interconnect: FabricAMBA},
			{Interconnect: FabricAMBA, MemWaitStates: 4},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 2, BufferFlits: 2},
			{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 2, BufferFlits: 8},
		},
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the package's core contract:
// the same grid produces byte-identical JSON and CSV artifacts with one
// worker and with eight.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	render := func(workers int) (string, string) {
		t.Helper()
		res, err := Runner{Workers: workers}.RunGrid(g)
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteJSON(&j, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, res); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Fatalf("JSON differs between -workers=1 and -workers=8:\n%s\n---\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Fatalf("CSV differs between -workers=1 and -workers=8:\n%s\n---\n%s", c1, c8)
	}
}

func TestSweepResultsPopulated(t *testing.T) {
	res, err := Runner{Workers: 8}.RunGrid(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 16 {
		t.Fatalf("got %d results, want 16", len(res))
	}
	for _, r := range res {
		if r.Err != "" {
			t.Fatalf("point %d (%s @ %s) failed: %s", r.ID, r.Workload, r.Fabric, r.Err)
		}
		if r.MakespanCycles == 0 || r.Transactions == 0 || r.Reads == 0 {
			t.Fatalf("point %d (%s @ %s) missing metrics: %+v", r.ID, r.Workload, r.Fabric, r)
		}
		if r.MakespanNS != r.MakespanCycles*r.ClockPeriodNS {
			t.Fatalf("point %d: makespan_ns %d != cycles %d × period %d",
				r.ID, r.MakespanNS, r.MakespanCycles, r.ClockPeriodNS)
		}
		if strings.HasPrefix(r.Fabric, FabricXPipes) && r.FlitsRouted == 0 {
			t.Fatalf("point %d on %s routed no flits", r.ID, r.Fabric)
		}
		if r.Fabric == FabricAMBA && r.BusBusyCycles == 0 {
			t.Fatalf("point %d on amba shows idle bus", r.ID)
		}
	}
	// Deeper buffers must not slow the mesh down for the same workload.
	byLabel := map[string]Result{}
	for _, r := range res {
		byLabel[r.Workload+"@"+r.Fabric] = r
	}
	shallow := byLabel["mpmatrix/2P/8@xpipes-4x2-buf2"]
	deep := byLabel["mpmatrix/2P/8@xpipes-4x2-buf8"]
	if shallow.MakespanCycles == 0 || deep.MakespanCycles == 0 {
		t.Fatalf("missing mesh variants: %v", byLabel)
	}
	if deep.MakespanCycles > shallow.MakespanCycles {
		t.Fatalf("deep buffers slower than shallow: %d vs %d cycles",
			deep.MakespanCycles, shallow.MakespanCycles)
	}
}

func TestRunnerClockPlumbing(t *testing.T) {
	g := Grid{
		Workloads: []Workload{
			{Kind: KindStochastic, Dist: "poisson", Cores: 2, MeanGap: 6, Count: 100},
		},
		Fabrics:        []Fabric{{Interconnect: FabricAMBA}},
		ClockPeriodsNS: []uint64{5, 10},
	}
	res, err := Runner{Workers: 2}.RunGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	// Same seed, same fabric: identical cycle behaviour, scaled sim time.
	if res[0].MakespanCycles != res[1].MakespanCycles {
		t.Fatalf("clock period changed cycle behaviour: %d vs %d",
			res[0].MakespanCycles, res[1].MakespanCycles)
	}
	if res[1].MakespanNS != 2*res[0].MakespanNS {
		t.Fatalf("10 ns run should cover twice the sim time: %d vs %d ns",
			res[1].MakespanNS, res[0].MakespanNS)
	}
}

func TestRunRecordsPointFailure(t *testing.T) {
	// A mesh too small for the cores+slaves must fail that point only.
	g := Grid{
		Workloads: []Workload{
			{Kind: KindStochastic, Dist: "uniform", Cores: 2, Count: 50},
			{Kind: KindStochastic, Dist: "uniform", Cores: 4, Count: 50},
		},
		Fabrics: []Fabric{{Interconnect: FabricXPipes, MeshWidth: 4, MeshHeight: 2}},
	}
	res, err := Runner{Workers: 2}.RunGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != "" {
		t.Fatalf("2-core point should fit a 4x2 mesh: %s", res[0].Err)
	}
	if res[1].Err == "" {
		t.Fatal("4-core point cannot fit a 4x2 mesh, expected a recorded error")
	}
}
