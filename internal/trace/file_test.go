package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m0.trc")
	tr := New(7, sim.DefaultClock, sampleEvents())

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := Parse(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.MasterID != 7 || len(got.Events) != len(tr.Events) {
		t.Fatalf("file round trip lost data: master=%d events=%d", got.MasterID, len(got.Events))
	}
}

func TestParseNonDefaultClock(t *testing.T) {
	src := `; noctg trace v1
; master 2 clockns 10
RD 0x00000100 @100ns acc@110ns
RSP 0x00000001 @200ns
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Clock.PeriodNS != 10 {
		t.Fatalf("clock = %d ns", tr.Clock.PeriodNS)
	}
	e := tr.Events[0]
	if e.Assert != 10 || e.Accept != 11 || e.Resp != 20 {
		t.Fatalf("cycles wrong with 10ns clock: %+v", e)
	}
}

func TestParseToleratesBlankAndCommentLines(t *testing.T) {
	src := `
; header comment

; another

WR 0x00000010 0x00000001 @10ns acc@15ns

`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("events = %d", len(tr.Events))
	}
}

func TestLargeTraceRoundTrip(t *testing.T) {
	// Tens of thousands of events: exercises the scanner buffer sizing and
	// keeps serialisation O(n).
	var evs []ocp.Event
	now := uint64(0)
	for i := 0; i < 50_000; i++ {
		e := ocp.Event{Cmd: ocp.Write, Addr: uint32(i%1024) * 4, Burst: 1,
			Data: []uint32{uint32(i)}, Assert: now + 2, Accept: now + 3}
		evs = append(evs, e)
		now = e.Done()
	}
	tr := New(0, sim.DefaultClock, evs)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(evs) {
		t.Fatalf("%d events survived of %d", len(got.Events), len(evs))
	}
	if !reflect.DeepEqual(got.Events[49_999], evs[49_999]) {
		t.Fatal("tail event corrupted")
	}
}
