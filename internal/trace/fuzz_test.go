package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse: arbitrary text must never panic the .trc parser, and accepted
// traces must survive a Write→Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("; noctg trace v1\n; master 0 clockns 5\nRD 0x00000104 @55ns acc@55ns\nRSP 0x088000f0 @75ns\n")
	f.Add("WR 0x00000020 0x00000111 @90ns acc@95ns\n")
	f.Add("BRD 0x00001000 +4 @140ns acc@145ns\nRSP 0x1 0x2 0x3 0x4 @165ns\n")
	f.Add("RSP orphan @10ns")
	f.Add("@@@@ ++++")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			// Parse accepts structurally valid lines whose timestamps may
			// violate ordering; Validate rejecting them is fine.
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("accepted trace fails to serialise: %v", err)
		}
		tr2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical output does not reparse: %v\n%s", err, buf.String())
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count %d → %d", len(tr.Events), len(tr2.Events))
		}
	})
}
