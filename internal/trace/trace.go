// Package trace implements the .trc on-disk format for OCP communication
// traces, following the paper's Figure 3(a): one line per request with a
// nanosecond timestamp, one RSP line per read response. Each line also
// records the request-acceptance time, which the translator needs to
// compute interconnect-independent idle gaps after posted writes.
//
// Timestamps are stored in nanoseconds (cycle × clock period), exactly as
// the paper prints them; the header records the clock so parsing recovers
// cycles losslessly.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

// Trace is the recorded communication of one master OCP interface.
type Trace struct {
	// MasterID identifies the traced core.
	MasterID int
	// Clock is the traced core's clock (5 ns in the paper's examples).
	Clock sim.Clock
	// Events are the transactions in issue order, timestamps in cycles.
	Events []ocp.Event
}

// New builds a trace from monitor events.
func New(masterID int, clock sim.Clock, events []ocp.Event) *Trace {
	if clock.PeriodNS == 0 {
		clock = sim.DefaultClock
	}
	return &Trace{MasterID: masterID, Clock: clock, Events: events}
}

// Span returns the completion time (cycles) of the last event, or zero.
func (t *Trace) Span() uint64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Done()
}

// Write renders the trace in .trc format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; noctg trace v1\n")
	fmt.Fprintf(bw, "; master %d clockns %d\n", t.MasterID, t.Clock.PeriodNS)
	ns := t.Clock.NS
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Cmd {
		case ocp.Read:
			fmt.Fprintf(bw, "RD 0x%08x @%dns acc@%dns\n", e.Addr, ns(e.Assert), ns(e.Accept))
		case ocp.BurstRead:
			fmt.Fprintf(bw, "BRD 0x%08x +%d @%dns acc@%dns\n", e.Addr, e.Burst, ns(e.Assert), ns(e.Accept))
		case ocp.Write:
			fmt.Fprintf(bw, "WR 0x%08x 0x%08x @%dns acc@%dns\n", e.Addr, e.Data[0], ns(e.Assert), ns(e.Accept))
		case ocp.BurstWrite:
			fmt.Fprintf(bw, "BWR 0x%08x +%d%s @%dns acc@%dns\n", e.Addr, e.Burst, dataList(e.Data), ns(e.Assert), ns(e.Accept))
		default:
			return fmt.Errorf("trace: event %d has invalid command %v", i, e.Cmd)
		}
		if e.HasResp {
			fmt.Fprintf(bw, "RSP%s @%dns\n", dataList(e.Data), ns(e.Resp))
		}
	}
	return bw.Flush()
}

func dataList(data []uint32) string {
	var b strings.Builder
	for _, d := range data {
		fmt.Fprintf(&b, " 0x%08x", d)
	}
	return b.String()
}

// Parse reads a .trc stream.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	t := &Trace{Clock: sim.DefaultClock}
	lineNo := 0
	var cur *ocp.Event
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeader(line, t)
			continue
		}
		fields := strings.Fields(line)
		kind := fields[0]
		if kind == "RSP" {
			if cur == nil || !cur.Cmd.IsRead() || cur.HasResp {
				return nil, fmt.Errorf("trace: line %d: RSP without pending read", lineNo)
			}
			var data []uint32
			var respNS uint64
			for _, f := range fields[1:] {
				switch {
				case strings.HasPrefix(f, "@"):
					v, err := parseNS(f[1:])
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
					}
					respNS = v
				default:
					v, err := parseHex(f)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
					}
					data = append(data, v)
				}
			}
			cur.Data = data
			cur.Resp = t.Clock.Cycles(respNS)
			cur.HasResp = true
			cur = nil
			continue
		}
		ev := ocp.Event{MasterID: t.MasterID, Burst: 1}
		switch kind {
		case "RD":
			ev.Cmd = ocp.Read
		case "BRD":
			ev.Cmd = ocp.BurstRead
		case "WR":
			ev.Cmd = ocp.Write
		case "BWR":
			ev.Cmd = ocp.BurstWrite
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", lineNo, kind)
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: missing address", lineNo)
		}
		addr, err := parseHex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		ev.Addr = addr
		for _, f := range fields[2:] {
			switch {
			case strings.HasPrefix(f, "+"):
				n, err := strconv.Atoi(f[1:])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("trace: line %d: bad burst %q", lineNo, f)
				}
				ev.Burst = n
			case strings.HasPrefix(f, "acc@"):
				v, err := parseNS(f[4:])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
				}
				ev.Accept = t.Clock.Cycles(v)
			case strings.HasPrefix(f, "@"):
				v, err := parseNS(f[1:])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
				}
				ev.Assert = t.Clock.Cycles(v)
			default:
				v, err := parseHex(f)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
				}
				ev.Data = append(ev.Data, v)
			}
		}
		if ev.Cmd.IsWrite() && len(ev.Data) != ev.Burst {
			return nil, fmt.Errorf("trace: line %d: write burst %d with %d data words", lineNo, ev.Burst, len(ev.Data))
		}
		t.Events = append(t.Events, ev)
		if ev.Cmd.IsRead() {
			cur = &t.Events[len(t.Events)-1]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("trace: read at cycle %d has no response", cur.Assert)
	}
	return t, nil
}

func parseHeader(line string, t *Trace) {
	fields := strings.Fields(strings.TrimPrefix(line, ";"))
	for i := 0; i+1 < len(fields); i++ {
		switch fields[i] {
		case "master":
			if v, err := strconv.Atoi(fields[i+1]); err == nil {
				t.MasterID = v
			}
		case "clockns":
			if v, err := strconv.ParseUint(fields[i+1], 10, 64); err == nil && v > 0 {
				t.Clock = sim.Clock{PeriodNS: v}
			}
		}
	}
}

func parseNS(s string) (uint64, error) {
	s = strings.TrimSuffix(s, "ns")
	return strconv.ParseUint(s, 10, 64)
}

func parseHex(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return uint32(v), nil
}

// Validate checks trace invariants: chronological order, accept ≥ assert,
// responses after accept.
func (t *Trace) Validate() error {
	var prev uint64
	for i := range t.Events {
		e := &t.Events[i]
		if e.Accept < e.Assert {
			return fmt.Errorf("trace: event %d accepted (%d) before asserted (%d)", i, e.Accept, e.Assert)
		}
		if e.HasResp && e.Resp < e.Accept {
			return fmt.Errorf("trace: event %d response (%d) before acceptance (%d)", i, e.Resp, e.Accept)
		}
		if e.Assert < prev {
			return fmt.Errorf("trace: event %d asserted (%d) before previous completion (%d)", i, e.Assert, prev)
		}
		prev = e.Done()
	}
	return nil
}
