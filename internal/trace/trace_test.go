package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"noctg/internal/ocp"
	"noctg/internal/sim"
)

func sampleEvents() []ocp.Event {
	return []ocp.Event{
		{Cmd: ocp.Read, Addr: 0x104, Burst: 1, Assert: 11, Accept: 12, Resp: 15,
			HasResp: true, Data: []uint32{0x088000f0}},
		{Cmd: ocp.Write, Addr: 0x20, Burst: 1, Assert: 18, Accept: 19, Data: []uint32{0x111}},
		{Cmd: ocp.BurstRead, Addr: 0x1000, Burst: 4, Assert: 28, Accept: 29, Resp: 40,
			HasResp: true, Data: []uint32{1, 2, 3, 4}},
		{Cmd: ocp.BurstWrite, Addr: 0x2000, Burst: 2, Assert: 50, Accept: 55, Data: []uint32{7, 8}},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tr := New(3, sim.DefaultClock, sampleEvents())
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if got.MasterID != 3 || got.Clock.PeriodNS != 5 {
		t.Fatalf("header lost: master=%d clock=%d", got.MasterID, got.Clock.PeriodNS)
	}
	want := sampleEvents()
	for i := range want {
		want[i].MasterID = 3
	}
	if !reflect.DeepEqual(got.Events, want) {
		t.Fatalf("events differ:\n got %+v\nwant %+v", got.Events, want)
	}
}

func TestFormatLooksLikeFig3a(t *testing.T) {
	tr := New(0, sim.DefaultClock, sampleEvents()[:2])
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"RD 0x00000104 @55ns",
		"RSP 0x088000f0 @75ns",
		"WR 0x00000020 0x00000111 @90ns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown record", "XX 0x0 @0ns acc@0ns"},
		{"orphan rsp", "RSP 0x1 @10ns"},
		{"bad addr", "RD zzz @0ns acc@0ns"},
		{"bad burst", "BRD 0x0 +x @0ns acc@0ns"},
		{"write data mismatch", "BWR 0x0 +3 0x1 @0ns acc@0ns"},
		{"read without response", "RD 0x0 @0ns acc@0ns"},
		{"missing address", "RD"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Fatalf("expected error for %q", c.src)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	tr := New(0, sim.DefaultClock, sampleEvents())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New(0, sim.DefaultClock, []ocp.Event{
		{Cmd: ocp.Read, Addr: 0, Burst: 1, Assert: 10, Accept: 5, Resp: 20, HasResp: true},
	})
	if err := bad.Validate(); err == nil {
		t.Fatal("accept before assert should fail validation")
	}
	overlap := New(0, sim.DefaultClock, []ocp.Event{
		{Cmd: ocp.Read, Addr: 0, Burst: 1, Assert: 10, Accept: 11, Resp: 20, HasResp: true, Data: []uint32{0}},
		{Cmd: ocp.Read, Addr: 0, Burst: 1, Assert: 15, Accept: 16, Resp: 30, HasResp: true, Data: []uint32{0}},
	})
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping transactions should fail validation")
	}
}

func TestSpan(t *testing.T) {
	tr := New(0, sim.DefaultClock, sampleEvents())
	if tr.Span() != 55 {
		t.Fatalf("span = %d, want accept of last write (55)", tr.Span())
	}
	if (&Trace{}).Span() != 0 {
		t.Fatal("empty trace span should be 0")
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var evs []ocp.Event
		now := uint64(rng.Intn(5))
		for i := 0; i < rng.Intn(30); i++ {
			kind := rng.Intn(4)
			e := ocp.Event{Addr: uint32(rng.Intn(1<<20) * 4), Burst: 1, MasterID: 2}
			e.Assert = now + uint64(1+rng.Intn(10))
			e.Accept = e.Assert + uint64(rng.Intn(5))
			switch kind {
			case 0:
				e.Cmd = ocp.Read
				e.HasResp = true
				e.Resp = e.Accept + uint64(1+rng.Intn(20))
				e.Data = []uint32{rng.Uint32()}
			case 1:
				e.Cmd = ocp.Write
				e.Data = []uint32{rng.Uint32()}
			case 2:
				e.Cmd = ocp.BurstRead
				e.Burst = 1 + rng.Intn(8)
				e.HasResp = true
				e.Resp = e.Accept + uint64(1+rng.Intn(20))
				e.Data = make([]uint32, e.Burst)
				for k := range e.Data {
					e.Data[k] = rng.Uint32()
				}
			case 3:
				e.Cmd = ocp.BurstWrite
				e.Burst = 1 + rng.Intn(8)
				e.Data = make([]uint32, e.Burst)
				for k := range e.Data {
					e.Data[k] = rng.Uint32()
				}
			}
			evs = append(evs, e)
			now = e.Done()
		}
		tr := New(2, sim.DefaultClock, evs)
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Events) != len(evs) {
			t.Fatalf("trial %d: %d events round-tripped to %d", trial, len(evs), len(got.Events))
		}
		if !reflect.DeepEqual(got.Events, evs) {
			t.Fatalf("trial %d: events differ", trial)
		}
	}
}
