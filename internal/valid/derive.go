package valid

import (
	"fmt"
	"math"

	"noctg/internal/sweep"
)

// deriveDraws is the capture size for scenario-derived sources: enough for
// the CI and χ² checks without dominating a -validate run's wall clock.
const deriveDraws = 25000

// FromPoint derives a validation source from a sweep point's workload,
// attaching every analytic expectation the configuration supports: the
// offered-load CI always, the exact gap CDF for Poisson and integral-width
// Uniform draws, the finite-window IDC band for two-state exponential
// MMPPs, and class shares when priorities are configured. It reports false
// for workloads the harness has no analytic spec for (TG replays, Gaussian
// and legacy-bursty gaps, fractional uniform widths); validation is
// open-loop, so the point's fabric is irrelevant and points differing only
// by fabric derive the same source.
func FromPoint(p sweep.Point) (Source, bool) {
	w := p.Workload
	if w.Kind != sweep.KindStochastic {
		return Source{}, false
	}
	cfg, err := w.StochasticConfig(p.Seed)
	if err != nil {
		return Source{}, false
	}
	cfg.Spatial = nil // open-loop capture targets a plain range, not a grid
	src := Source{
		Name:   fmt.Sprintf("%s/s%d", w.Label(), p.Seed),
		Config: cfg,
		Draws:  deriveDraws,
	}
	if len(w.Classes) > 0 {
		var sum float64
		for _, c := range w.Classes {
			sum += c
		}
		probs := make([]float64, len(w.Classes))
		for i, c := range w.Classes {
			probs[i] = c / sum
		}
		src.ClassProbs = probs
	}
	switch {
	case cfg.MMPP != nil:
		src.Rate = discRate(cfg.MMPP.Rate())
		if len(cfg.MMPP.StateGaps) == 2 && !cfg.MMPP.Deterministic {
			g, d := cfg.MMPP.StateGaps, cfg.MMPP.StateDwells
			// Window the IDC at twice the realized on/off period and accept
			// a wide band around the analytic curve: scenario-derived
			// configurations are arbitrary, so the check asserts the
			// variance-time shape rather than a tuned constant.
			period := realDwell(g[0], d[0]) + realDwell(g[1], d[1])
			t := 2 * period
			ana := mmpp2IDC(g[0], g[1], d[0], d[1], t)
			src.IDCWindow = uint64(t)
			src.IDCLow, src.IDCHigh = 0.4*ana, 1.6*ana
		}
	case cfg.SelfSimilar != nil:
		src.Rate = discRate(cfg.SelfSimilar.Rate())
	default:
		m := cfg.MeanGap
		if m == 0 {
			m = 10 // generator default
		}
		switch w.Dist {
		case "poisson":
			src.Rate = expGapRate(m)
			src.GapCDF, src.GapCDFName = expGapCDF(m), "exp"
		case "uniform":
			l := 2 * m
			if l != math.Trunc(l) {
				return Source{}, false
			}
			src.Rate = 1 / (1 + (l-1)/2)
			src.GapCDF, src.GapCDFName = uniformGapCDF(l), "uniform"
		default:
			return Source{}, false
		}
	}
	return src, true
}

// realDwell is a state's realized duration: the virtual dwell stretched by
// one handshake cycle per injection.
func realDwell(gap, d float64) float64 {
	if gap == 0 {
		return d
	}
	return d * (gap + 1) / gap
}
