package valid

import (
	"math"
	"sort"

	"noctg/internal/sweep"
)

// meanCI returns the sample mean and the half-width of the two-sided 95%
// Student-t confidence interval, reusing the t-quantile table that drives
// the adaptive sweep's CI stop rule.
func meanCI(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, math.Inf(1)
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, sweep.TQuantile(n-1) * sd / math.Sqrt(float64(n))
}

// ksDistance returns the Kolmogorov–Smirnov statistic between the empirical
// distribution of integer-valued samples and an analytic CDF evaluated at
// integer support points. Both CDFs are right-continuous step functions
// jumping only at integers, so the supremum is attained next to an observed
// value: the analytic mass just below the jump, cdf(v−1), pairs with the
// empirical mass strictly below v, and cdf(v) with the mass including v
// (which also covers the plateau up to the next observed value).
func ksDistance(samples []uint64, cdf func(k float64) float64) float64 {
	if len(samples) == 0 {
		return math.Inf(1)
	}
	xs := make([]uint64, len(samples))
	copy(xs, samples)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	n := float64(len(xs))
	var d float64
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] {
			j++
		}
		lo := float64(i) / n // empirical mass strictly below the value
		hi := float64(j) / n // empirical mass up to and including it
		if v := math.Abs(cdf(float64(xs[i])-1) - lo); v > d {
			d = v
		}
		if v := math.Abs(cdf(float64(xs[i])) - hi); v > d {
			d = v
		}
		i = j
	}
	return d
}

// windowCounts buckets event times into consecutive windows of w cycles,
// dropping the ragged tail window. Times must be sorted ascending.
func windowCounts(times []uint64, w uint64) []float64 {
	if len(times) == 0 || w == 0 {
		return nil
	}
	t0 := times[0]
	span := times[len(times)-1] - t0
	n := int(span / w)
	if n == 0 {
		return nil
	}
	counts := make([]float64, n)
	for _, t := range times {
		i := int((t - t0) / w)
		if i < n {
			counts[i]++
		}
	}
	return counts
}

// idc returns the index of dispersion for counts: Var(N)/E[N]. A Poisson
// process gives 1; bursty processes give more, regular ones less.
func idc(counts []float64) float64 {
	if len(counts) < 2 {
		return math.NaN()
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	if mean == 0 {
		return math.NaN()
	}
	var ss float64
	for _, c := range counts {
		d := c - mean
		ss += d * d
	}
	return ss / float64(len(counts)-1) / mean
}

// linregSlope fits y = a + b·x by least squares and returns b.
func linregSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// aggVarHurst estimates the Hurst exponent of a count process by the
// aggregate-variance method: block-average the base-window counts at
// doubling aggregation levels m, regress log2 Var(X^(m)) on log2 m, and
// read H = 1 + slope/2. Long-range-dependent traffic decays slower than
// the slope −1 of independent counts (H = 0.5); H → 1 is maximally
// self-similar. Aggregation stops while at least minBlocks blocks remain,
// keeping the top-level variance estimate meaningful.
func aggVarHurst(counts []float64, minBlocks int) float64 {
	if minBlocks < 2 {
		minBlocks = 2
	}
	var lx, ly []float64
	for m := 1; len(counts)/m >= minBlocks; m *= 2 {
		blocks := len(counts) / m
		means := make([]float64, blocks)
		for b := 0; b < blocks; b++ {
			var s float64
			for i := b * m; i < (b+1)*m; i++ {
				s += counts[i]
			}
			means[b] = s / float64(m)
		}
		var mean float64
		for _, v := range means {
			mean += v
		}
		mean /= float64(blocks)
		var ss float64
		for _, v := range means {
			d := v - mean
			ss += d * d
		}
		v := ss / float64(blocks-1)
		if v <= 0 {
			break
		}
		lx = append(lx, math.Log2(float64(m)))
		ly = append(ly, math.Log2(v))
	}
	if len(lx) < 3 {
		return math.NaN()
	}
	return 1 + linregSlope(lx, ly)/2
}

// chiSquareStat returns the Pearson χ² statistic of observed category
// counts against expected probabilities.
func chiSquareStat(obs []float64, probs []float64) float64 {
	var total float64
	for _, o := range obs {
		total += o
	}
	var x2 float64
	for i, o := range obs {
		e := total * probs[i]
		if e == 0 {
			if o > 0 {
				return math.Inf(1)
			}
			continue
		}
		d := o - e
		x2 += d * d / e
	}
	return x2
}

// chiSquareCrit95 holds the 95th-percentile χ² critical values for
// df = 1..7; message-class draws are capped at 8 classes so 7 degrees of
// freedom suffice.
var chiSquareCrit95 = [...]float64{3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067}
