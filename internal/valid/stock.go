package valid

import (
	"math"

	"noctg/internal/stochastic"
)

// discRate maps a continuous arrival rate λ (events per virtual-time unit)
// to the realized injection rate: every injection spends one extra
// handshake cycle, so n events take n/λ + n cycles and the discrete rate
// is λ/(1+λ).
func discRate(lambda float64) float64 { return lambda / (1 + lambda) }

// expGapCDF is the exact CDF of the legacy Poisson inter-injection time:
// the generator floors an Exp(m) draw and adds the one-cycle handshake, so
// P(inter ≤ k) = P(Exp(m) < k) = 1 − e^(−k/m) for integer k ≥ 1.
func expGapCDF(m float64) func(float64) float64 {
	return func(k float64) float64 {
		if k < 1 {
			return 0
		}
		return 1 - math.Exp(-k/m)
	}
}

// expGapRate is the realized rate of the legacy Poisson source: the
// floored gap has mean 1/Expm1(1/m) exactly (sum of the survival tail).
func expGapRate(m float64) float64 {
	return 1 / (1 + 1/math.Expm1(1/m))
}

// uniformGapCDF is the exact CDF of the legacy Uniform inter-injection
// time with integer support width L = 2·MeanGap: gaps are uniform on
// 0..L−1, so P(inter ≤ k) = k/L for k = 1..L.
func uniformGapCDF(l float64) func(float64) float64 {
	return func(k float64) float64 {
		if k < 1 {
			return 0
		}
		return math.Min(math.Floor(k)/l, 1)
	}
}

// mmpp2IDC is the finite-window index of dispersion of a two-state
// exponential MMPP in realized time. Per-state realized rates are
// λi = 1/(gapi+1) (zero when silent); a state's realized dwell stretches
// by one handshake cycle per injection, Di = di·(gapi+1)/gapi for emitting
// states. With q = 1/D1 + 1/D2 and stationary shares πi,
//
//	IDC(t) = 1 + 2·π1·π2·(λ1−λ2)²/(q·λ̄) · (1 − (1−e^(−qt))/(qt))
//
// — the classic MMPP variance-time curve, which dominates the renewal-level
// dispersion for the long-dwell stock configurations this harness checks.
func mmpp2IDC(gap1, gap2, d1, d2, t float64) float64 {
	stretch := func(gap, d float64) float64 {
		if gap == 0 {
			return d
		}
		return d * (gap + 1) / gap
	}
	rate := func(gap float64) float64 {
		if gap == 0 {
			return 0
		}
		return 1 / (gap + 1)
	}
	D1, D2 := stretch(gap1, d1), stretch(gap2, d2)
	l1, l2 := rate(gap1), rate(gap2)
	q := 1/D1 + 1/D2
	p1 := (1 / D2) / q
	p2 := 1 - p1
	lbar := p1*l1 + p2*l2
	qt := q * t
	shape := 1 - (1-math.Exp(-qt))/qt
	return 1 + 2*p1*p2*(l1-l2)*(l1-l2)/(q*lbar)*shape
}

// StockSources is the fidelity suite CI runs on every push: one source per
// arrival model, each with a fixed seed and analytic expectations tight
// enough to catch drift in the generators' state machines or their
// discretization, yet wide enough to be deterministic-stable.
func StockSources() []Source {
	onIDC := mmpp2IDC(3, 0, 300, 600, 2000)
	return []Source{
		{
			Name:   "poisson-m10",
			Config: stochastic.Config{Dist: stochastic.Poisson, MeanGap: 10, Seed: 1},
			Draws:  24000,
			Rate:   expGapRate(10),
			GapCDF: expGapCDF(10), GapCDFName: "exp",
			IDCWindow: 64, IDCLow: 0.5, IDCHigh: 1.3,
			// Poisson is the Hurst control: no long-range dependence, H ≈ ½.
			HurstBase: 32, HurstLow: 0.35, HurstHigh: 0.65,
		},
		{
			Name:   "uniform-m10",
			Config: stochastic.Config{Dist: stochastic.Uniform, MeanGap: 10, Seed: 2},
			Draws:  24000,
			Rate:   1 / (1 + 9.5), // E[gap] = (L−1)/2 with L = 20
			GapCDF: uniformGapCDF(20), GapCDFName: "uniform",
			IDCWindow: 64, IDCLow: 0.2, IDCHigh: 1.0,
		},
		{
			Name: "mmpp-onoff",
			Config: stochastic.Config{Seed: 3, MMPP: &stochastic.MMPP{
				StateGaps: []float64{3, 0}, StateDwells: []float64{300, 600}}},
			Draws: 30000,
			Rate:  discRate((&stochastic.MMPP{StateGaps: []float64{3, 0}, StateDwells: []float64{300, 600}}).Rate()),
			// The on/off switching term dominates: the analytic curve gives
			// IDC(2000) ≈ 64, and a ±50% band still sits far above Poisson.
			IDCWindow: 2000, IDCLow: 0.5 * onIDC, IDCHigh: 1.5 * onIDC,
		},
		{
			Name: "mmpp-det",
			Config: stochastic.Config{Seed: 4, MMPP: &stochastic.MMPP{
				StateGaps: []float64{4, 16}, StateDwells: []float64{200, 400},
				Deterministic: true}},
			Draws: 30000,
			Rate:  discRate((&stochastic.MMPP{StateGaps: []float64{4, 16}, StateDwells: []float64{200, 400}}).Rate()),
			// Deterministic dwells make the variance-time curve oscillate
			// with the 675-cycle state period, so the band is a fixed
			// super-Poisson corridor rather than an analytic point.
			IDCWindow: 512, IDCLow: 1.5, IDCHigh: 64,
		},
		{
			Name: "selfsim-h07",
			Config: stochastic.Config{Seed: 5, SelfSimilar: &stochastic.SelfSimilar{
				Sources: 16, Hurst: 0.7, OnMean: 40, OffMean: 120, PeakGap: 8}},
			Draws:     60000,
			Rate:      discRate((&stochastic.SelfSimilar{Sources: 16, Hurst: 0.7, OnMean: 40, OffMean: 120, PeakGap: 8}).Rate()),
			IDCWindow: 256, IDCLow: 1.2, IDCHigh: 200,
			HurstBase: 32, HurstLow: 0.55, HurstHigh: 0.85,
		},
		{
			Name: "selfsim-h085",
			Config: stochastic.Config{Seed: 6, SelfSimilar: &stochastic.SelfSimilar{
				Sources: 16, Hurst: 0.85, OnMean: 60, OffMean: 180, PeakGap: 8}},
			Draws:     60000,
			Rate:      discRate((&stochastic.SelfSimilar{Sources: 16, Hurst: 0.85, OnMean: 60, OffMean: 180, PeakGap: 8}).Rate()),
			IDCWindow: 256, IDCLow: 1.2, IDCHigh: 400,
			HurstBase: 32, HurstLow: 0.65, HurstHigh: 1.0,
		},
		{
			Name: "priority-poisson",
			Config: stochastic.Config{Dist: stochastic.Poisson, MeanGap: 6, Seed: 7,
				Classes: []float64{5, 3, 2}},
			Draws:      20000,
			Rate:       expGapRate(6),
			ClassProbs: []float64{0.5, 0.3, 0.2},
		},
	}
}
