// Package valid is the generator-validation harness: it runs each
// stochastic traffic source open-loop against an instantly-accepting
// capture port and checks the injected stream against the source's
// analytic spec — offered load inside a 95% Student-t confidence
// interval, inter-injection times against the exact discretized CDF
// (Kolmogorov–Smirnov), index of dispersion against the finite-window
// MMPP analytic, aggregate-variance Hurst estimates for self-similar
// sources, and χ² message-class shares.
//
// Every check is deterministic: the capture device is registered before
// the generator and stays permanently awake, so all three kernels execute
// the generator on exactly the same cycles and the fidelity report is
// byte-identical across kernels and worker counts (the report embeds
// neither). The same property makes each check a plain seeded CI test
// rather than a flaky statistical one.
package valid

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"noctg/internal/ocp"
	"noctg/internal/sim"
	"noctg/internal/stochastic"
	"noctg/internal/sweep"
)

// collectMaxCycles bounds one open-loop capture run; the stock suite's
// slowest source finishes in well under a million cycles.
const collectMaxCycles = 100_000_000

// loadWindows splits the capture into this many equal windows for the
// offered-load confidence interval.
const loadWindows = 16

// ksCrit is the Kolmogorov–Smirnov acceptance coefficient: crit = ksCrit/√n.
// The asymptotic 95% coefficient is 1.358 for i.i.d. samples; discretized
// renewal gaps carry weak phase dependence between neighbours, so the
// harness uses the 99.9% coefficient as the guard band.
const ksCrit = 1.949

// cycleProbe is the capture clock: registered first so its Tick runs
// before the generator's on every cycle, it publishes the current cycle to
// the port and — by always reporting itself awake — pins every kernel to a
// cycle-by-cycle schedule, which makes injection timestamps kernel-exact.
type cycleProbe struct{ now uint64 }

func (c *cycleProbe) Name() string               { return "validprobe" }
func (c *cycleProbe) Tick(cycle uint64)          { c.now = cycle }
func (c *cycleProbe) NextWake(now uint64) uint64 { return now }

// capturePort accepts every request on first presentation and records its
// injection cycle and class tag. The harness drives sources with
// ReadFraction = -1 (pure posted writes), so TakeResponse is never
// consulted and inter-injection times equal the drawn gap plus the
// one-cycle handshake exactly.
type capturePort struct {
	probe   *cycleProbe
	times   []uint64
	classes []int
}

func (p *capturePort) TryRequest(req *ocp.Request) bool {
	p.times = append(p.times, p.probe.now)
	p.classes = append(p.classes, req.Class)
	return true
}

func (p *capturePort) TakeResponse() (*ocp.Response, bool) { return nil, false }
func (p *capturePort) Busy() bool                          { return false }

// Source pairs a stochastic generator configuration with its analytic
// expectations. Zero-valued check fields skip that check.
type Source struct {
	// Name labels the source in the report.
	Name string
	// Config is the generator under test. The harness forces open-loop
	// capture settings: ReadFraction -1, Count = Draws, and a default
	// address range when none is set.
	Config stochastic.Config
	// Draws is the number of injections to capture.
	Draws int

	// Rate is the analytic injected-transactions-per-cycle the offered-load
	// CI check targets. Required.
	Rate float64
	// GapCDF, when set, is the exact CDF of the integer inter-injection
	// time checked by the KS test; GapCDFName labels it in the report.
	GapCDF     func(k float64) float64
	GapCDFName string
	// IDCWindow, when nonzero, enables the index-of-dispersion check on
	// counts in windows of that many cycles, asserting IDC ∈ [IDCLow, IDCHigh].
	IDCWindow       uint64
	IDCLow, IDCHigh float64
	// HurstHigh > 0 enables the aggregate-variance Hurst check over base
	// windows of HurstBase cycles, asserting H ∈ [HurstLow, HurstHigh].
	HurstBase           uint64
	HurstLow, HurstHigh float64
	// ClassProbs, when set, enables the χ² check of captured class tags
	// against these probabilities (must sum to 1).
	ClassProbs []float64
}

// Check is one fidelity assertion: the measured Value must lie in
// [Low, High]; Target records the analytic center where one exists.
type Check struct {
	Name   string  `json:"name"`
	Value  float64 `json:"value"`
	Target float64 `json:"target,omitempty"`
	Low    float64 `json:"low"`
	High   float64 `json:"high"`
	Pass   bool    `json:"pass"`
}

// SourceReport is the per-source fidelity result.
type SourceReport struct {
	Source string  `json:"source"`
	Draws  int     `json:"draws"`
	Checks []Check `json:"checks"`
	Pass   bool    `json:"pass"`
}

// Report is the full fidelity report. It deliberately embeds neither the
// kernel nor the worker count: the artifact must be byte-identical across
// both axes, and the determinism tests pin that.
type Report struct {
	Sources []SourceReport `json:"sources"`
	Pass    bool           `json:"pass"`
}

// WriteJSON writes the report as indented JSON, the sweep artifact style.
func (r Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// collect runs one generator open-loop under the given kernel and returns
// its injection cycles and class tags.
func collect(cfg stochastic.Config, kernel sim.Kernel) ([]uint64, []int) {
	eng := sim.NewEngine(sim.Clock{})
	eng.SetKernel(kernel)
	probe := &cycleProbe{}
	port := &capturePort{probe: probe}
	eng.Add(probe)
	g := stochastic.New(0, cfg, port)
	eng.Add(g)
	if _, err := eng.Run(collectMaxCycles, g.Done); err != nil {
		panic(fmt.Sprintf("valid: open-loop capture did not converge: %v", err))
	}
	return port.times, port.classes
}

func boundCheck(name string, value, target, low, high float64) Check {
	return Check{Name: name, Value: value, Target: target, Low: low, High: high,
		Pass: value >= low && value <= high}
}

// CheckSource captures one source under kernel and evaluates its checks.
func CheckSource(src Source, kernel sim.Kernel) SourceReport {
	cfg := src.Config
	cfg.Count = src.Draws
	cfg.ReadFraction = -1 // pure posted writes: inter-injection = gap + 1
	if len(cfg.Ranges) == 0 && cfg.Spatial == nil {
		cfg.Ranges = []ocp.AddrRange{{Base: 0, Size: 0x400}}
	}
	times, classes := collect(cfg, kernel)
	// Drop the leading eighth as warmup: arrival state machines start from
	// their stationary draw but the phase of the virtual clock does not.
	skip := len(times) / 8
	times = times[skip:]
	classes = classes[skip:]
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	rep := SourceReport{Source: src.Name, Draws: src.Draws, Pass: true}
	add := func(c Check) {
		rep.Checks = append(rep.Checks, c)
		rep.Pass = rep.Pass && c.Pass
	}

	// Offered load: per-window injection counts vs. the analytic rate.
	span := times[len(times)-1] - times[0]
	w := span / loadWindows
	if counts := windowCounts(times, w); len(counts) >= 2 {
		mean, half := meanCI(counts)
		target := src.Rate * float64(w)
		add(Check{Name: "offered-load-ci", Value: mean, Target: target,
			Low: mean - half, High: mean + half,
			Pass: target >= mean-half && target <= mean+half})
	} else {
		add(Check{Name: "offered-load-ci", Pass: false})
	}

	if src.GapCDF != nil {
		gaps := make([]uint64, len(times)-1)
		for i := range gaps {
			gaps[i] = times[i+1] - times[i]
		}
		d := ksDistance(gaps, src.GapCDF)
		crit := ksCrit / math.Sqrt(float64(len(gaps)))
		add(boundCheck("gap-ks-"+src.GapCDFName, d, 0, 0, crit))
	}

	if src.IDCWindow > 0 {
		v := idc(windowCounts(times, src.IDCWindow))
		add(boundCheck("idc", v, (src.IDCLow+src.IDCHigh)/2, src.IDCLow, src.IDCHigh))
	}

	if src.HurstHigh > 0 {
		h := aggVarHurst(windowCounts(times, src.HurstBase), 16)
		add(boundCheck("hurst-aggvar", h, (src.HurstLow+src.HurstHigh)/2,
			src.HurstLow, src.HurstHigh))
	}

	if len(src.ClassProbs) > 0 {
		obs := make([]float64, len(src.ClassProbs))
		for _, c := range classes {
			obs[c]++
		}
		x2 := chiSquareStat(obs, src.ClassProbs)
		df := len(src.ClassProbs) - 1
		add(boundCheck("class-share-chi2", x2, 0, 0, chiSquareCrit95[df-1]))
	}
	return rep
}

// Validate runs every source through CheckSource with the given worker
// count. Results are slot-indexed (sweep.Map), so the report is identical
// for any worker count.
func Validate(sources []Source, kernel sim.Kernel, workers int) Report {
	reps, err := sweep.Map(workers, sources, func(_ int, s Source) (SourceReport, error) {
		return CheckSource(s, kernel), nil
	})
	if err != nil {
		panic(err) // CheckSource never returns an error
	}
	rep := Report{Sources: reps, Pass: true}
	for _, s := range reps {
		rep.Pass = rep.Pass && s.Pass
	}
	return rep
}
