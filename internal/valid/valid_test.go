package valid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"noctg/internal/sim"
	"noctg/internal/stochastic"
)

// TestStockSourcesPass is the fidelity gate: every stock source must pass
// every analytic check. Failures print the offending check with its band.
func TestStockSourcesPass(t *testing.T) {
	rep := Validate(StockSources(), sim.KernelStrict, 4)
	for _, s := range rep.Sources {
		for _, c := range s.Checks {
			if !c.Pass {
				t.Errorf("%s: %s = %g outside [%g, %g] (target %g)",
					s.Source, c.Name, c.Value, c.Low, c.High, c.Target)
			}
		}
	}
	if !rep.Pass {
		t.Fatal("fidelity report failed")
	}
}

// TestReportKernelByteIdentical pins the determinism contract: the
// fidelity report serializes byte-identically under all three kernels.
func TestReportKernelByteIdentical(t *testing.T) {
	// A reduced suite keeps the 3-kernel sweep fast; determinism does not
	// depend on draw counts.
	srcs := StockSources()[:3]
	for i := range srcs {
		srcs[i].Draws /= 4
	}
	var ref bytes.Buffer
	if err := Validate(srcs, sim.KernelStrict, 2).WriteJSON(&ref); err != nil {
		t.Fatal(err)
	}
	for _, k := range []sim.Kernel{sim.KernelSkip, sim.KernelEvent} {
		var got bytes.Buffer
		if err := Validate(srcs, k, 2).WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), got.Bytes()) {
			t.Errorf("kernel %v: report differs from strict\nstrict:\n%s\n%v:\n%s",
				k, ref.String(), k, got.String())
		}
	}
}

// TestReportWorkerByteIdentical: the worker pool must not leak scheduling
// order into the artifact.
func TestReportWorkerByteIdentical(t *testing.T) {
	srcs := StockSources()[:4]
	for i := range srcs {
		srcs[i].Draws /= 4
	}
	var a, b bytes.Buffer
	if err := Validate(srcs, sim.KernelStrict, 1).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Validate(srcs, sim.KernelStrict, 8).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("report depends on worker count")
	}
}

// TestHarnessDetectsDrift is the negative control: a source whose spec
// deliberately misstates the analytic rate (2× too high) must fail the
// offered-load CI, and one with wrong class shares must fail the χ² check.
// A harness that cannot fail validates nothing.
func TestHarnessDetectsDrift(t *testing.T) {
	wrongRate := Source{
		Name:   "wrong-rate",
		Config: stochastic.Config{Dist: stochastic.Poisson, MeanGap: 10, Seed: 1},
		Draws:  8000,
		Rate:   2 * expGapRate(10),
	}
	rep := CheckSource(wrongRate, sim.KernelStrict)
	if rep.Pass {
		t.Error("2x-wrong rate spec passed the offered-load CI")
	}
	wrongClasses := Source{
		Name: "wrong-classes",
		Config: stochastic.Config{Dist: stochastic.Poisson, MeanGap: 6, Seed: 7,
			Classes: []float64{5, 3, 2}},
		Draws:      8000,
		Rate:       expGapRate(6),
		ClassProbs: []float64{0.2, 0.3, 0.5},
	}
	rep = CheckSource(wrongClasses, sim.KernelStrict)
	if rep.Pass {
		t.Error("mis-stated class shares passed the chi-square check")
	}
	wrongCDF := Source{
		Name:   "wrong-cdf",
		Config: stochastic.Config{Dist: stochastic.Uniform, MeanGap: 10, Seed: 2},
		Draws:  8000,
		Rate:   1 / (1 + 9.5),
		GapCDF: expGapCDF(10), GapCDFName: "exp",
	}
	rep = CheckSource(wrongCDF, sim.KernelStrict)
	if rep.Pass {
		t.Error("uniform gaps passed a KS test against the exponential CDF")
	}
}

// TestRandomizedMMPPRateCI is the property-test half: seeded-random MMPP
// configurations must all land their offered load inside the CI of their
// own analytic rate.
func TestRandomizedMMPPRateCI(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6; i++ {
		states := 2 + rng.Intn(2)
		m := &stochastic.MMPP{}
		for s := 0; s < states; s++ {
			gap := float64(2 + rng.Intn(10))
			if s > 0 && rng.Intn(3) == 0 {
				gap = 0
			}
			m.StateGaps = append(m.StateGaps, gap)
			m.StateDwells = append(m.StateDwells, float64(100+rng.Intn(300)))
		}
		m.Deterministic = rng.Intn(2) == 0
		src := Source{
			Name:   "random-mmpp",
			Config: stochastic.Config{Seed: int64(1000 + i), MMPP: m},
			Draws:  20000,
			Rate:   discRate(m.Rate()),
		}
		rep := CheckSource(src, sim.KernelStrict)
		if !rep.Pass {
			t.Errorf("config %d (%+v): %+v", i, m, rep.Checks)
		}
	}
}

// Unit checks for the estimators themselves.

func TestKSDistanceExact(t *testing.T) {
	// Empirical == analytic: one sample of each value 1..n against the
	// discrete uniform CDF gives the minimal attainable distance 0.
	n := 1000
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64(i + 1)
	}
	if d := ksDistance(xs, uniformGapCDF(float64(n))); d > 1e-9 {
		t.Errorf("exact-match KS distance = %g, want 0", d)
	}
	// A point mass at 1 against the same CDF has distance 1 − 1/n.
	ones := make([]uint64, n)
	for i := range ones {
		ones[i] = 1
	}
	if d := ksDistance(ones, uniformGapCDF(float64(n))); math.Abs(d-(1-1.0/float64(n))) > 1e-9 {
		t.Errorf("point-mass KS distance = %g, want %g", d, 1-1.0/float64(n))
	}
}

func TestHurstOfIndependentCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	counts := make([]float64, 1<<13)
	for i := range counts {
		counts[i] = float64(rng.Intn(10))
	}
	h := aggVarHurst(counts, 16)
	if math.Abs(h-0.5) > 0.1 {
		t.Errorf("iid counts Hurst = %g, want ~0.5", h)
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	xs := []float64{9, 10, 11, 10, 9, 11, 10, 10}
	mean, half := meanCI(xs)
	if mean != 10 {
		t.Fatalf("mean = %g", mean)
	}
	if half <= 0 || half > 2 {
		t.Fatalf("CI half-width = %g", half)
	}
}
