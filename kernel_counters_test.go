package noctg_test

import (
	"reflect"
	"testing"

	"noctg/internal/core"
	"noctg/internal/platform"
)

func TestBusCounterKernelEquivalence(t *testing.T) {
	src := `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 7
BEGIN
	Write(addr, data)
	Idle(5000)
	Write(addr, data)
	Halt
END`
	run := func(kernel platform.KernelMode) (busy, idle uint64) {
		progs := make([]*core.Program, 2)
		for i := range progs {
			p, err := core.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			progs[i] = p
		}
		sys, err := platform.BuildTG(platform.Config{Cores: 2, Kernel: kernel}, progs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100_000); err != nil {
			t.Fatal(err)
		}
		return sys.Bus.BusyCycles(), sys.Bus.IdleCycles()
	}
	sb, si := run(platform.KernelStrict)
	for _, kernel := range []platform.KernelMode{platform.KernelSkip, platform.KernelEvent} {
		kb, ki := run(kernel)
		if sb != kb || si != ki {
			t.Fatalf("bus counters diverge: strict busy=%d idle=%d, %v busy=%d idle=%d", sb, si, kernel, kb, ki)
		}
	}
	t.Logf("busy=%d idle=%d identical across kernels", sb, si)
}

// TestBusWaitCyclesBudgetExhaustTail pins the WaitCycles getter's tail
// settlement: a run cut off by its cycle budget while the bus sleeps
// through a long transfer with another master queued must still report the
// strict kernel's per-cycle wait counts (the lazily credited frozen-set
// span up to the final cycle).
func TestBusWaitCyclesBudgetExhaustTail(t *testing.T) {
	occupier := `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 7
BEGIN
	BurstWrite(addr, data, 8)
	Idle(5000)
	Halt
END`
	waiter := `MASTER[0,0]
REGISTER addr 0x08000040
REGISTER data 9
BEGIN
	Write(addr, data)
	Halt
END`
	run := func(kernel platform.KernelMode) []uint64 {
		progs := make([]*core.Program, 2)
		for i, src := range []string{occupier, waiter} {
			p, err := core.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			progs[i] = p
		}
		sys, err := platform.BuildTG(platform.Config{Cores: 2, Kernel: kernel}, progs)
		if err != nil {
			t.Fatal(err)
		}
		// The budget lands mid-transfer: the 8-beat burst occupies the bus
		// well past cycle 10 while the waiter sits in portRequesting.
		if _, err := sys.Run(10); err == nil {
			t.Fatal("expected the cycle budget to exhaust mid-transfer")
		}
		return append([]uint64(nil), sys.Bus.WaitCycles()...)
	}
	want := run(platform.KernelStrict)
	if want[1] == 0 {
		t.Fatal("waiter accumulated no wait cycles under strict; the scenario is miswired")
	}
	for _, kernel := range []platform.KernelMode{platform.KernelSkip, platform.KernelEvent} {
		got := run(kernel)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("WaitCycles diverge on budget exhaust: strict %v, %v %v", want, kernel, got)
		}
	}
}
