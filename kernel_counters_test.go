package noctg_test

import (
	"testing"

	"noctg/internal/core"
	"noctg/internal/platform"
)

func TestBusCounterKernelEquivalence(t *testing.T) {
	src := `MASTER[0,0]
REGISTER addr 0x08000000
REGISTER data 7
BEGIN
	Write(addr, data)
	Idle(5000)
	Write(addr, data)
	Halt
END`
	run := func(kernel platform.KernelMode) (busy, idle uint64) {
		progs := make([]*core.Program, 2)
		for i := range progs {
			p, err := core.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			progs[i] = p
		}
		sys, err := platform.BuildTG(platform.Config{Cores: 2, Kernel: kernel}, progs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100_000); err != nil {
			t.Fatal(err)
		}
		return sys.Bus.BusyCycles(), sys.Bus.IdleCycles()
	}
	sb, si := run(platform.KernelStrict)
	kb, ki := run(platform.KernelSkip)
	if sb != kb || si != ki {
		t.Fatalf("bus counters diverge: strict busy=%d idle=%d, skip busy=%d idle=%d", sb, si, kb, ki)
	}
	t.Logf("busy=%d idle=%d identical across kernels", sb, si)
}
