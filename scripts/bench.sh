#!/bin/sh
# bench.sh — run the benchmark suite and write JSON baseline artifacts that
# start (and extend) the repository's performance trajectory.
#
# Usage:
#   scripts/bench.sh [benchtime]     full suite -> bench/BENCH_<date>.{txt,json}
#   scripts/bench.sh smoke [outbase] smoke set  -> <outbase>.{txt,json}
#                                    (default outbase: bench/SMOKE_BASELINE)
#
# The dated JSON artifact is the committed historical trajectory (refresh it
# on PRs that move performance). SMOKE_BASELINE.json is the CI regression
# gate: the bench-compare job re-runs the same smoke set with the same
# -benchtime and fails on >20% normalized regression (see scripts/benchdiff).
# Refresh it with `scripts/bench.sh smoke` whenever the smoke benchmarks
# change intentionally.
set -eu

cd "$(dirname "$0")/.."
mkdir -p bench

# The smoke set: kernel micro-benchmarks and the mixed-load suite — fast,
# deterministic simcycles, and the benchmarks whose ratios the README
# quotes. Time-based benchtime gives each entry enough iterations for a
# stable ns/op, and three repetitions let benchdiff compare min-of-runs
# (the noise-robust statistic); the CI compare gate depends on both.
# ShardScaling joins with its 1shard variant only: multi-shard ns/op scales
# with the host's core count, which benchdiff's single-threaded
# normalization probe cannot cancel, so those variants live only in the
# full dated runs. It needs its own invocation — a combined pattern's
# /1shard element would also filter the other benchmarks' sub-benchmarks.
smoke_pattern='EngineTick|EngineSkipIdle|EngineEvent|TransactionPath|PhasedMeasure|BurstyInjection|JournaledSweep|AnalyticEstimate|AdaptiveCurve'
smoke_shard_pattern='ShardScaling/1shard'
smoke_benchtime='300ms'
smoke_count=3

if [ "${1:-}" = "smoke" ]; then
  # The CI bench-compare job runs this same path with a scratch outbase, so
  # the pattern and benchtime above are the single source of truth for both
  # sides of the comparison.
  out="${2:-bench/SMOKE_BASELINE}"
  go test -run='^$' -bench="$smoke_pattern" -benchtime="$smoke_benchtime" \
    -count="$smoke_count" . | tee "$out.txt"
  go test -run='^$' -bench="$smoke_shard_pattern" -benchtime="$smoke_benchtime" \
    -count="$smoke_count" . | tee -a "$out.txt"
  go run ./scripts/bench2json "$out.txt" > "$out.json"
  echo "wrote $out.json" >&2
  exit 0
fi

benchtime="${1:-1x}"
stamp="$(date -u +%Y-%m-%d)"
raw="bench/BENCH_${stamp}.txt"
json="bench/BENCH_${stamp}.json"

go test -run='^$' -bench=. -benchtime="$benchtime" ./... | tee "$raw"
go run ./scripts/bench2json "$raw" > "$json"
echo "wrote $json" >&2
