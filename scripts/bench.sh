#!/bin/sh
# bench.sh — run the benchmark suite and write a dated JSON baseline
# artifact (bench/BENCH_<date>.json) plus the raw text output, starting the
# performance trajectory that CI uploads on every run.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime defaults to 1x (a smoke pass); use e.g. 100ms locally for
#   steadier numbers.
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1x}"
stamp="$(date -u +%Y%m%d)"
mkdir -p bench

raw="bench/BENCH_${stamp}.txt"
json="bench/BENCH_${stamp}.json"

go test -run='^$' -bench=. -benchtime="$benchtime" ./... | tee "$raw"
go run ./scripts/bench2json "$raw" > "$json"
echo "wrote $json" >&2
