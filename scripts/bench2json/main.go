// Command bench2json converts `go test -bench` text output into a JSON
// baseline artifact: one record per benchmark with ns/op and every custom
// metric (Msimcycles/s, simcycles, errpct, …). CI runs it via
// scripts/bench.sh and uploads the result, so the repository accumulates a
// dated performance trajectory.
//
// Usage: bench2json [bench-output.txt]   (reads stdin when no file given)
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark measurement.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	records, err := parse(in)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fail(err)
	}
}

// parse extracts Benchmark lines of the form:
//
//	BenchmarkName-8   123   456.7 ns/op   8.9 Msimcycles/s   10 simcycles
func parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       strings.TrimSuffix(fields[0], cpuSuffix(fields[0])),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				rec.NsPerOp = v
			} else {
				rec.Metrics[fields[i+1]] = v
			}
		}
		if len(rec.Metrics) == 0 {
			rec.Metrics = nil
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS marker, if present.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}
