// Command benchdiff compares two bench2json baseline artifacts and fails
// (exit 1) on regression, gating CI on the committed performance baseline.
//
// Two checks run per benchmark present in both files:
//
//   - the "simcycles" metric (the simulated makespan a benchmark reports)
//     must match exactly: it is a deterministic function of the simulation
//     models, so any drift is a behavioural regression, not noise;
//   - ns/op must not regress by more than -tol percent (default 20). Host
//     timing is noisy, so entries faster than -floor (default 50µs) are
//     skipped — their ns/op is dominated by fixed overheads.
//
// With -normalize NAME, every ns/op is first divided by benchmark NAME's
// ns/op from the same file before comparing. The probe cancels the host's
// absolute speed to first order, so a baseline recorded on one machine
// class still gates a different CI runner: what is compared is "cycles of
// this benchmark per cycle of the probe", which only a real code-path
// regression moves by 20%.
//
// Benchmarks present in only one file are reported but not fatal: the
// baseline is refreshed by scripts/bench.sh, not on every added benchmark.
//
// Usage: benchdiff [-tol 20] [-floor 50000] [-normalize NAME] baseline.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Record mirrors scripts/bench2json's output schema.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	tol := flag.Float64("tol", 20, "allowed ns/op regression in percent")
	floor := flag.Float64("floor", 50_000, "skip the timing check for benchmarks faster than this many ns/op in the baseline")
	normalize := flag.String("normalize", "", "divide each ns/op by this benchmark's ns/op from the same file before comparing (cancels host speed)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol pct] [-floor ns] [-normalize NAME] baseline.json new.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	fail(err)
	cur, err := load(flag.Arg(1))
	fail(err)

	baseScale, curScale := 1.0, 1.0
	if *normalize != "" {
		bp, ok1 := base[*normalize]
		cp, ok2 := cur[*normalize]
		if !ok1 || !ok2 || bp.NsPerOp <= 0 || cp.NsPerOp <= 0 {
			fail(fmt.Errorf("normalize probe %q missing from one of the files", *normalize))
		}
		baseScale, curScale = bp.NsPerOp, cp.NsPerOp
	}

	failed := 0
	compared := 0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			fmt.Printf("benchdiff: %-50s only in baseline (skipped)\n", name)
			continue
		}
		compared++
		if bs, ok := b.Metrics["simcycles"]; ok {
			if cs, ok := c.Metrics["simcycles"]; ok && bs != cs {
				fmt.Printf("benchdiff: FAIL %-45s simcycles %v -> %v (simulated behaviour changed)\n", name, bs, cs)
				failed++
				continue
			}
		}
		if b.NsPerOp < *floor || name == *normalize {
			continue
		}
		bv, cv := b.NsPerOp/baseScale, c.NsPerOp/curScale
		if cv > bv*(1+*tol/100) {
			fmt.Printf("benchdiff: FAIL %-45s %.0f ns/op -> %.0f ns/op (>%+.0f%% normalized)\n",
				name, b.NsPerOp, c.NsPerOp, *tol)
			failed++
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("benchdiff: %-50s new (no baseline)\n", name)
		}
	}
	fmt.Printf("benchdiff: %d benchmarks compared, %d regressions\n", compared, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func load(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	if err := json.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Record, len(recs))
	for _, r := range recs {
		// Repeated runs of one benchmark (-count N) collapse to the fastest:
		// min-of-runs is the noise-robust statistic for "how fast can this
		// code go on this host".
		if prev, ok := out[r.Name]; ok && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		out[r.Name] = r
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
